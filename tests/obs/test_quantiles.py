"""Quantile estimation from log2 histogram buckets.

The estimator reconstructs order statistics from the bucket vector alone,
so its guarantee is relative, not absolute: bucket edges double, hence any
estimate is within a factor of 2 of the true order statistic (and exact at
q=0 and q=1, where the tracked min/max answer directly).
"""

import random

import pytest

from repro.obs.metrics import DurationHistogram, HistogramSummary, bucket_bound


def summarize(values):
    h = DurationHistogram("test", ())
    for v in values:
        h.observe(v)
    return HistogramSummary(
        count=h.count,
        total=h.total,
        min=h.min if h.count else 0.0,
        max=h.max if h.count else 0.0,
        buckets=tuple(h.buckets),
    )


def true_quantile(values, q):
    ordered = sorted(values)
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


def test_empty_histogram_quantile_is_zero():
    assert summarize([]).quantile(0.5) == 0.0


def test_extremes_are_exact():
    s = summarize([0.5, 3.0, 17.0])
    assert s.quantile(0.0) == 0.5
    assert s.quantile(-1.0) == 0.5
    assert s.quantile(1.0) == 17.0
    assert s.quantile(2.0) == 17.0


def test_single_observation_every_quantile():
    s = summarize([4.2])
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert s.quantile(q) == pytest.approx(4.2, rel=1.0)
    assert s.quantile(0.0) == 4.2
    assert s.quantile(1.0) == 4.2


def test_quantiles_are_monotone_in_q():
    rng = random.Random(3)
    s = summarize([rng.lognormvariate(0.0, 2.0) for _ in range(500)])
    qs = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]
    estimates = [s.quantile(q) for q in qs]
    assert estimates == sorted(estimates)


def test_quantile_clamped_to_observed_range():
    s = summarize([2.0, 2.5, 3.0])
    for q in (0.1, 0.5, 0.9):
        assert 2.0 <= s.quantile(q) <= 3.0


@pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.95, 0.99])
@pytest.mark.parametrize(
    "draw",
    [
        lambda rng: rng.uniform(0.001, 10.0),
        lambda rng: rng.expovariate(0.2),
        lambda rng: rng.lognormvariate(1.0, 1.5),
    ],
    ids=["uniform", "exponential", "lognormal"],
)
def test_relative_error_within_2x(q, draw):
    # The documented bound: log2 buckets put the estimate in the same
    # power-of-two bucket as the true order statistic, so it is off by at
    # most a factor of 2 either way.
    rng = random.Random(11)
    values = [draw(rng) for _ in range(2000)]
    estimate = summarize(values).quantile(q)
    truth = true_quantile(values, q)
    assert truth / 2.0 <= estimate <= truth * 2.0


def test_interpolation_inside_one_bucket():
    # 100 identical values: every quantile collapses to that value.
    s = summarize([1.5] * 100)
    assert s.quantile(0.5) == pytest.approx(1.5, rel=1.0)
    assert s.min == s.max == 1.5


def test_overflow_bucket_clamps_to_max():
    # Values beyond the last finite bucket edge still produce finite
    # estimates bounded by the exact max.
    top = bucket_bound(38) * 10.0
    s = summarize([top, top * 2.0])
    assert s.quantile(0.99) <= top * 2.0
    assert s.quantile(0.99) > 0.0
    assert s.quantile(1.0) == top * 2.0


class TestClampAdversarial:
    """Sparse histograms where interpolation wants to leave [min, max].

    One sample per log2 bucket is the worst case: every bucket's
    ``(lower, upper]`` span is maximally wide relative to its population,
    so naive interpolation can land beyond the observed extremes — and in
    a sharded run's *merged* histogram the min/max may come from another
    shard entirely, making the bucket edges even less trustworthy.
    """

    def test_single_sample_per_bucket_stays_in_range(self):
        values = [0.0013, 0.005, 0.02, 0.09, 0.3, 1.7, 6.0]
        s = summarize(values)
        for q in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999):
            assert s.min <= s.quantile(q) <= s.max

    def test_lone_sample_near_bucket_lower_edge(self):
        # 1.001 sits at the very bottom of the (1, 2] bucket; a high
        # quantile must not interpolate toward the bucket's upper edge.
        s = summarize([0.1, 1.001])
        assert s.quantile(0.99) <= 1.001
        assert s.quantile(0.99) >= 0.1

    def test_lone_max_in_overflow_bucket(self):
        # A single enormous sample: the overflow bucket's nominal span is
        # unbounded, the estimate must still be the exact max.
        s = summarize([1.0, bucket_bound(38) * 1e6])
        assert s.quantile(0.999) <= s.max

    def test_merged_summaries_with_foreign_extremes(self):
        # Shard A's histogram merged with shard B's: B's max dominates,
        # A's min dominates, and no quantile may escape the merged range.
        a = summarize([0.002, 0.004, 0.008])
        b = summarize([50.0, 200.0])
        m = a.merged(b)
        assert m.min == 0.002
        assert m.max == 200.0
        for q in (0.0, 0.2, 0.5, 0.8, 0.99, 1.0):
            assert m.min <= m.quantile(q) <= m.max

    def test_merged_quantiles_monotone(self):
        a = summarize([0.01, 0.3, 2.0])
        b = summarize([0.05, 7.0])
        m = a.merged(b)
        qs = [0.05, 0.25, 0.5, 0.75, 0.95]
        estimates = [m.quantile(q) for q in qs]
        assert estimates == sorted(estimates)
