"""The metamorphic harness: relations, shrinking, repro artifacts."""

import json
import random

import pytest

import repro.core.master as master_module
from repro.check import metamorphic as M
from repro.core.offsets import merge_query


def small_case(**overrides):
    base = dict(
        seed=11,
        nprocs=3,
        nqueries=2,
        nfragments=2,
        nservers=2,
        write_every=1,
        strategy="ww-list",
    )
    base.update(overrides)
    return M.CheckCase(**base)


class TestCaseGeneration:
    def test_same_seed_same_cases(self):
        a_rng = random.Random(5)
        a = [M.random_case(a_rng) for _ in range(3)]
        b_rng = random.Random(5)
        b = [M.random_case(b_rng) for _ in range(3)]
        assert a == b

    def test_cases_stay_in_bounds(self):
        rng = random.Random(0)
        for _ in range(50):
            case = M.random_case(rng)
            assert 3 <= case.nprocs <= 6
            assert 1 <= case.nqueries <= 4
            assert 1 <= case.nfragments <= 6
            assert 2 <= case.nservers <= 4
            assert 1 <= case.write_every <= 3
            assert case.strategy in M.STRATEGY_NAMES

    def test_build_config_shape(self):
        case = small_case()
        cfg = M.build_config(case)
        assert cfg.store_data and cfg.check
        assert cfg.pvfs.nservers == case.nservers
        assert cfg.result_model.max_count == 60
        # Overrides flow through with_().
        assert M.build_config(case, strategy="mw").strategy == "mw"


class TestRelations:
    def test_all_relations_hold_on_a_healthy_case(self):
        case = small_case()
        for name, relation in M.RELATIONS.items():
            assert relation(case) is None, name

    def test_signature_is_deterministic(self):
        cfg = M.build_config(small_case())
        assert M._run_signature(cfg) == M._run_signature(cfg)


class TestShrinking:
    def test_shrinks_to_the_minimal_failing_region(self):
        case = small_case(nqueries=4, nfragments=6, nprocs=6, nservers=4)

        def fails(candidate):
            return candidate.nqueries >= 2 and candidate.nfragments >= 3

        shrunk = M.shrink_case(case, fails)
        assert (shrunk.nqueries, shrunk.nfragments) == (2, 3)
        assert shrunk.nprocs == 2 and shrunk.nservers == 1
        assert fails(shrunk)

    def test_unshrinkable_case_is_returned_unchanged(self):
        case = small_case(nqueries=1, nfragments=1, nprocs=2, nservers=1,
                          write_every=1)
        assert M.shrink_case(case, lambda c: True) == case

    def test_candidates_are_strictly_smaller(self):
        case = small_case(nqueries=4, nfragments=6)
        for candidate in M._shrink_candidates(case):
            assert candidate != case
            assert (
                candidate.nqueries <= case.nqueries
                and candidate.nfragments <= case.nfragments
                and candidate.nprocs <= case.nprocs
                and candidate.nservers <= case.nservers
                and candidate.write_every <= case.write_every
            )


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "repro.json")
        case = small_case()
        M.write_artifact(path, "query-sync", case, "boom",
                         original=small_case(nqueries=4))
        relation, loaded, error = M.load_artifact(path)
        assert relation == "query-sync"
        assert loaded == case
        assert error == "boom"
        doc = json.loads(open(path).read())
        assert doc["format"] == M.ARTIFACT_FORMAT
        assert doc["original_case"]["nqueries"] == 4

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a check artifact"):
            M.load_artifact(str(path))

    def test_load_rejects_unknown_relation(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": M.ARTIFACT_FORMAT,
                                    "relation": "nope", "case": {}}))
        with pytest.raises(ValueError, match="unknown relation"):
            M.load_artifact(str(path))

    def test_replay_of_a_healthy_case_holds(self, tmp_path):
        path = str(tmp_path / "repro.json")
        M.write_artifact(path, "empty-faults", small_case(), "stale error")
        assert M.replay_artifact(path) is None


class TestHarness:
    def test_clean_harness_run(self):
        report = M.run_harness(
            ncases=1, seed=3, relations=["query-sync", "empty-faults"]
        )
        assert report.ok
        assert report.cases == 1
        assert report.checks_run == 2
        assert report.relations == ("query-sync", "empty-faults")

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError, match="unknown relation"):
            M.run_harness(ncases=1, relations=["nope"])

    def test_cases_env_var(self, monkeypatch):
        monkeypatch.setenv(M.CASES_ENV, "17")
        assert M.default_cases() == 17
        monkeypatch.setenv(M.CASES_ENV, "garbage")
        assert M.default_cases() == M.DEFAULT_CASES
        monkeypatch.delenv(M.CASES_ENV)
        assert M.default_cases() == M.DEFAULT_CASES

    def test_corruption_is_caught_shrunk_and_replayable(
        self, tmp_path, monkeypatch
    ):
        """The acceptance path: break a layer, get a minimized repro."""

        def corrupted(batches, base_offset):
            offsets, block = merge_query(batches, base_offset)
            for frag, arr in offsets.items():
                if len(arr) >= 2:
                    bad = arr.copy()
                    bad[0] = bad[1]
                    offsets[frag] = bad
                    break
            return offsets, block

        monkeypatch.setattr(master_module, "merge_query", corrupted)
        report = M.run_harness(
            ncases=1,
            seed=3,
            relations=["query-sync"],
            artifact_dir=str(tmp_path),
        )
        assert not report.ok
        (failure,) = report.failures
        assert "InvariantViolation" in failure.error
        assert "dense-tiling" in failure.error
        # Shrinking reached the floor of every dimension that still fails.
        assert failure.case.nprocs == 2
        assert failure.case.nservers == 1
        assert failure.case.nqueries == 1
        assert failure.artifact is not None
        # The artifact replays to the same failure while the bug exists...
        error = M.replay_artifact(failure.artifact)
        assert error is not None and "dense-tiling" in error
        # ...and holds again once the bug is fixed.
        monkeypatch.setattr(master_module, "merge_query", merge_query)
        assert M.replay_artifact(failure.artifact) is None
