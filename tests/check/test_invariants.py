"""The cross-layer invariant checker: zero-cost, laws, violation paths."""

import numpy as np
import pytest

import repro.core.master as master_module
from repro.check import (
    NULL_CHECKER,
    InvariantChecker,
    InvariantViolation,
    NullChecker,
)
from repro.core import S3aSim, SimulationConfig
from repro.core.offsets import merge_query
from repro.faults import FaultPlan
from repro.faults.plan import MessageLoss, ServerOutage, WorkerCrash
from repro.trace import TraceRecorder

SMALL = dict(nprocs=4, nqueries=3, nfragments=6)

#: Locked end-to-end timings (tests/obs/test_determinism.py owns these).
GOLDEN = {
    "mw": 25.410715708394612,
    "ww-posix": 24.30148509613702,
    "ww-list": 21.376782075112857,
    "ww-coll": 21.81401815133468,
}


def run_one(strategy, check, **overrides):
    cfg = SimulationConfig(strategy=strategy, check=check, **SMALL, **overrides)
    app = S3aSim(cfg)
    result = app.run()
    return result, app


class TestZeroCost:
    """--check must not move a single event in virtual time."""

    @pytest.mark.parametrize("strategy", sorted(GOLDEN))
    def test_checked_run_matches_golden(self, strategy):
        result, app = run_one(strategy, check=True)
        assert result.elapsed == GOLDEN[strategy]
        # The checker actually ran, on every layer it instruments.
        checker = app.world.env.check
        assert checker.enabled
        assert checker.checks > 0
        assert checker.tx_bytes > 0
        assert checker.messages  # at least one MPI kind audited
        assert checker.servers  # at least one server audited

    def test_unchecked_run_keeps_null_checker(self):
        _, app = run_one("ww-list", check=False)
        assert app.world.env.check is NULL_CHECKER
        assert not app.world.env.check.enabled

    def test_checked_run_with_trace_and_stack(self):
        from dataclasses import replace

        recorder = TraceRecorder()
        cfg = SimulationConfig(strategy="ww-posix", check=True, **SMALL)
        cfg = cfg.with_(
            pvfs=replace(
                cfg.pvfs, disk_sched="elevator", server_cache_B=4 * 1024 * 1024
            )
        )
        checked = S3aSim(cfg, recorder=recorder).run()
        plain = S3aSim(
            cfg.with_(check=False), recorder=TraceRecorder()
        ).run()
        assert checked.elapsed == plain.elapsed

    def test_checked_run_under_faults(self):
        plan = FaultPlan(
            worker_crashes=(WorkerCrash(rank=2, at_time=3.0, downtime_s=2.0),),
            server_outages=(ServerOutage(server_id=0, start=5.0, duration=1.5),),
            message_loss=(MessageLoss(drop_prob=0.05, start=0.0, end=8.0),),
        )
        recorder = TraceRecorder()
        cfg = SimulationConfig(
            strategy="ww-list", check=True, fault_plan=plan, **SMALL
        )
        checked = S3aSim(cfg, recorder=recorder).run()
        plain = S3aSim(
            cfg.with_(check=False), recorder=TraceRecorder()
        ).run()
        assert checked.elapsed == plain.elapsed
        assert checked.file_stats.complete


def corrupt_merge(batches, base_offset):
    """merge_query, except one result is assigned its neighbour's offset."""
    offsets, block = merge_query(batches, base_offset)
    for frag, arr in offsets.items():
        if len(arr) >= 2:
            bad = arr.copy()
            bad[0] = bad[1]  # two results now collide
            offsets[frag] = bad
            break
    return offsets, block


class TestCorruptionIsCaught:
    """An intentionally wrong layer must trip a structured violation."""

    def test_corrupted_offset_trips_dense_tiling(self, monkeypatch):
        monkeypatch.setattr(master_module, "merge_query", corrupt_merge)
        with pytest.raises(InvariantViolation) as excinfo:
            run_one("ww-list", check=True)
        violation = excinfo.value
        assert violation.layer == "offsets"
        assert violation.invariant == "dense-tiling"
        assert violation.time is not None
        assert "query" in violation.context

    def test_unchecked_run_fails_later_and_unstructured(self, monkeypatch):
        monkeypatch.setattr(master_module, "merge_query", corrupt_merge)
        # Without --check the duplicate offset survives until two writes
        # collide in the byte store, far from the faulty layer.
        with pytest.raises(Exception) as excinfo:
            run_one("ww-list", check=False)
        assert not isinstance(excinfo.value, InvariantViolation)


class TestUnitLaws:
    """Each ledger's law, exercised directly."""

    def test_rx_exceeding_tx_fails(self):
        checker = InvariantChecker()
        checker.nic_tx(100)
        checker.nic_rx(100)
        with pytest.raises(InvariantViolation, match="wire-conservation"):
            checker.nic_rx(1)

    def test_drop_counts_against_tx(self):
        checker = InvariantChecker()
        checker.nic_tx(100)
        checker.nic_rx(60)
        checker.wire_drop(40)
        with pytest.raises(InvariantViolation, match="wire-conservation"):
            checker.wire_drop(1)

    def test_delivered_exceeding_sent_fails(self):
        checker = InvariantChecker()
        checker.msg_sent("eager", 10)
        checker.msg_delivered("eager", 10)
        with pytest.raises(InvariantViolation, match="message-conservation"):
            checker.msg_delivered("eager", 10)

    def test_disk_write_exceeding_intake_fails(self):
        checker = InvariantChecker()
        checker.server_write_in(3, 100)
        checker.server_disk_write(3, 100)
        with pytest.raises(InvariantViolation, match="server-conservation"):
            checker.server_disk_write(3, 1)

    def test_cache_absorb_rejects_negative_merge(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="cache-accounting"):
            checker.cache_absorb(0, 10, -1)
        with pytest.raises(InvariantViolation, match="cache-accounting"):
            checker.cache_absorb(0, 10, 11)

    def test_cache_gauge_mismatch_fails(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="cache-gauge"):
            checker.cache_state(0, [(0, 10)], 11)

    def test_cache_overlapping_runs_fail(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="cache-extents"):
            checker.cache_state(0, [(0, 10), (5, 15)], 20)

    def test_cache_empty_extent_fails(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="cache-extents"):
            checker.cache_flush(0, [(10, 10)], 0)

    def test_cache_flush_sum_mismatch_fails(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="cache-flush"):
            checker.cache_flush(0, [(0, 10)], 9)

    def test_layout_byte_loss_fails(self):
        checker = InvariantChecker()
        checker.layout_mapped(100, 100)  # equal is fine
        with pytest.raises(InvariantViolation, match="layout-conservation"):
            checker.layout_mapped(100, 99)

    def test_offsets_gap_fails(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="dense-tiling"):
            checker.offsets_assigned(
                0, 0, 20,
                {0: np.array([0, 12])},  # gap: second result at 12, not 10
                {0: np.array([10, 10])},
            )

    def test_offsets_overlap_fails(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="dense-tiling"):
            checker.offsets_assigned(
                0, 0, 20,
                {0: np.array([0, 5])},
                {0: np.array([10, 10])},
            )

    def test_offsets_block_size_mismatch_fails(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="dense-tiling"):
            checker.offsets_assigned(
                0, 0, 25,
                {0: np.array([0, 10])},
                {0: np.array([10, 10])},
            )

    def test_offsets_cursor_continuity(self):
        checker = InvariantChecker()
        checker.offsets_assigned(0, 0, 10, {0: np.array([0])}, {0: np.array([10])})
        checker.offsets_assigned(1, 10, 5, {0: np.array([10])}, {0: np.array([5])})
        with pytest.raises(InvariantViolation, match="ledger-continuity"):
            checker.offsets_assigned(
                2, 16, 5, {0: np.array([16])}, {0: np.array([5])}
            )

    def test_offsets_cursor_starts_anywhere(self):
        # Resumed runs begin at a nonzero base; the first block sets the
        # cursor rather than being checked against zero.
        checker = InvariantChecker()
        checker.offsets_assigned(
            3, 1000, 10, {0: np.array([1000])}, {0: np.array([10])}
        )
        assert checker._offset_cursor == {0: 1010}

    def test_entry_alignment_mismatch_fails(self):
        checker = InvariantChecker()
        checker.entry_alignment(0, 0, 4, 4)
        with pytest.raises(InvariantViolation, match="entry-alignment"):
            checker.entry_alignment(0, 1, 4, 3)


class TestFinalize:
    def test_fault_free_strict_equality(self):
        checker = InvariantChecker()
        checker.nic_tx(100)
        checker.nic_rx(90)
        with pytest.raises(InvariantViolation, match="wire-conservation"):
            checker.finalize(now=1.0, fault_free=True)

    def test_faulted_run_relaxes_to_inequality(self):
        checker = InvariantChecker()
        checker.nic_tx(100)
        checker.nic_rx(90)
        checker.msg_sent("eager", 50)
        checker.finalize(now=1.0, fault_free=False)  # no raise

    def test_undelivered_message_fails_fault_free(self):
        checker = InvariantChecker()
        checker.msg_sent("eager", 50)
        with pytest.raises(InvariantViolation, match="message-conservation"):
            checker.finalize(now=1.0, fault_free=True)

    def test_oob_exempt_from_strict_delivery(self):
        # OOB control messages may still be in flight at termination even
        # without faults (heartbeat posted right before the stop event).
        checker = InvariantChecker()
        checker.msg_sent("oob", 10)
        checker.finalize(now=1.0, fault_free=True)

    def test_server_ledger_balances_with_dirty_and_merged(self):
        checker = InvariantChecker()
        checker.server_write_in(0, 100)
        checker.server_disk_write(0, 60)
        checker.cache_absorb(0, 40, 10)
        checker.cache_state(0, [(0, 30)], 30)
        checker.finalize(now=1.0)  # 60 disk + 30 dirty + 10 merged == 100

    def test_server_ledger_leak_fails(self):
        checker = InvariantChecker()
        checker.server_write_in(0, 100)
        checker.server_disk_write(0, 60)
        with pytest.raises(InvariantViolation, match="server-conservation"):
            checker.finalize(now=1.0)

    def test_trace_open_interval_fails(self):
        recorder = TraceRecorder()
        recorder.begin(1, "compute", 0.5)
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="intervals-close"):
            checker.finalize(now=1.0, recorder=recorder)

    def test_trace_row_overlap_fails(self):
        recorder = TraceRecorder()
        recorder.record(1, "compute", 0.0, 0.6)
        recorder.record(1, "compute", 0.5, 1.0)
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="row-overlap"):
            checker.finalize(now=2.0, recorder=recorder)

    def test_trace_interval_past_end_fails(self):
        recorder = TraceRecorder()
        recorder.record(1, "compute", 0.0, 3.0)
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="interval-bounds"):
            checker.finalize(now=2.0, recorder=recorder)

    def test_plan_window_rows_are_exempt(self):
        # The fault injector records plan windows up front; they may
        # overlap on one server row and outlive the run.
        recorder = TraceRecorder()
        recorder.record(-1, "server_outage", 0.0, 5.0)
        recorder.record(-1, "server_outage", 4.0, 9.0)
        checker = InvariantChecker()
        checker.finalize(now=2.0, recorder=recorder)  # no raise

    def test_distinct_states_may_overlap(self):
        recorder = TraceRecorder()
        recorder.record(1, "compute", 0.0, 1.0)
        recorder.record(1, "io", 0.5, 1.5)
        checker = InvariantChecker()
        checker.finalize(now=2.0, recorder=recorder)  # different rows


class TestStrategyLedger:
    """The hybrid-auto three-way ledger: chosen == executed == traced."""

    def test_consistent_ledger_finalizes(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "mw")
        checker.strategy_executed(0, "mw")
        checker.strategy_traced(0, "mw")
        checker._finalize_strategies(fault_free=True)

    def test_re_recording_same_name_is_fine(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "ww-list")
        checker.strategy_executed(0, "ww-list")
        checker.strategy_executed(0, "ww-list")  # one record per entry
        checker.strategy_traced(0, "ww-list")
        checker._finalize_strategies(fault_free=True)

    def test_conflicting_choice_fails(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "mw")
        with pytest.raises(InvariantViolation, match="strategy-ledger"):
            checker.strategy_chosen(0, "ww-list")

    def test_executing_unchosen_query_fails(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="strategy-ledger"):
            checker.strategy_executed(0, "mw")

    def test_executing_other_than_chosen_fails(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "mw")
        with pytest.raises(InvariantViolation, match="strategy-ledger"):
            checker.strategy_executed(0, "ww-list")

    def test_trace_mismatch_fails_at_finalize(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "mw")
        checker.strategy_executed(0, "mw")
        checker.strategy_traced(0, "ww-list")
        with pytest.raises(InvariantViolation, match="strategy-ledger"):
            checker._finalize_strategies(fault_free=True)

    def test_missing_trace_fails_at_finalize(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "mw")
        checker.strategy_executed(0, "mw")
        with pytest.raises(InvariantViolation, match="strategy-ledger"):
            checker._finalize_strategies(fault_free=True)

    def test_chosen_never_executed_fails_only_fault_free(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "mw")
        checker.strategy_traced(0, "mw")
        checker._finalize_strategies(fault_free=False)  # crash may strand it
        with pytest.raises(InvariantViolation, match="strategy-ledger"):
            checker._finalize_strategies(fault_free=True)

    def test_shards_are_independent(self):
        checker = InvariantChecker()
        checker.strategy_chosen(0, "mw", shard=0)
        checker.strategy_chosen(0, "ww-list", shard=1)  # same slot, other shard
        checker.strategy_executed(0, "mw", shard=0)
        checker.strategy_executed(0, "ww-list", shard=1)
        checker.strategy_traced(0, "mw", shard=0)
        checker.strategy_traced(0, "ww-list", shard=1)
        checker._finalize_strategies(fault_free=True)

    def test_summary_lists_choices(self):
        checker = InvariantChecker()
        checker.strategy_chosen(3, "mw", shard=1)
        assert checker.summary()["strategies"] == {"1:3": "mw"}

    def test_null_checker_has_ledger_noops(self):
        null = NullChecker()
        null.strategy_chosen(0, "mw")
        null.strategy_executed(0, "ww-list")
        null.strategy_traced(0, "ww-coll")


class TestPlumbing:
    def test_violation_message_is_structured(self):
        violation = InvariantViolation(
            "mpi", "wire-conservation", "boom", time=1.25, context={"tx": 3}
        )
        text = str(violation)
        assert "[mpi/wire-conservation]" in text
        assert "t=1.25" in text
        assert "boom" in text
        assert violation.context == {"tx": 3}

    def test_null_checker_is_inert(self):
        null = NullChecker()
        null.nic_tx(1)
        null.msg_delivered("eager", 5)
        null.cache_state(0, [(5, 1)], 99)  # nonsense goes unnoticed
        null.finalize(now=0.0)
        assert not null.enabled

    def test_summary_shape(self):
        _, app = run_one("mw", check=True)
        summary = app.world.env.check.summary()
        assert summary["checks"] > 0
        assert summary["tx_bytes"] == summary["rx_bytes"]
        for kind, (sent, sent_b, delivered, delivered_b) in summary[
            "messages"
        ].items():
            assert sent == delivered, kind
            assert sent_b == delivered_b, kind
        for ledger in summary["servers"].values():
            assert (
                ledger["write_in"]
                == ledger["disk_written"] + ledger["dirty"] + ledger["merged"]
            )
