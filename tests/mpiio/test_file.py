"""MPIIOFile: open semantics, method routing, sync-after-write, views."""

import pytest

from repro.mpi import MpiWorld, NetworkConfig
from repro.mpiio import (
    IND_LIST,
    IND_POSIX,
    IND_SIEVE,
    Bytes,
    MPIIOFile,
    MPIIOHints,
    Vector,
)
from repro.pvfs import FileSystem, PVFSConfig
from repro.sim import Environment

MIB = 1024 * 1024


def fast_pvfs(**kwargs):
    defaults = dict(
        nservers=4,
        network=NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB, cpu_overhead_s=0),
        client_pipeline_Bps=1000 * MIB,
        store_data=True,
    )
    defaults.update(kwargs)
    return PVFSConfig(**defaults)


class TestHints:
    def test_validation(self):
        with pytest.raises(ValueError):
            MPIIOHints(cb_nodes=0)
        with pytest.raises(ValueError):
            MPIIOHints(cb_buffer_size=0)
        with pytest.raises(ValueError):
            MPIIOHints(ind_wr_method="bogus")

    def test_with_(self):
        hints = MPIIOHints().with_(ind_wr_method=IND_POSIX)
        assert hints.ind_wr_method == IND_POSIX
        assert hints.sync_after_write  # unchanged

    def test_effective_cb_nodes(self):
        assert MPIIOHints().effective_cb_nodes(comm_size=8, nservers=16) == 8
        assert MPIIOHints().effective_cb_nodes(comm_size=64, nservers=16) == 16
        assert MPIIOHints(cb_nodes=4).effective_cb_nodes(64, 16) == 4
        assert MPIIOHints(cb_nodes=100).effective_cb_nodes(8, 16) == 8


class TestOpen:
    def test_collective_open_shares_handle(self):
        world = MpiWorld(nranks=3)
        fs = FileSystem(world.env, fast_pvfs())

        def main(comm):
            fh = yield from MPIIOFile.open(comm, fs, "/shared")
            return id(fh.file)

        world.spawn_all(main)
        out = world.run()
        assert len(set(out.values())) == 1

    def test_independent_open(self):
        env = Environment()
        fs = FileSystem(env, fast_pvfs())

        def proc():
            fh = yield from MPIIOFile.open_independent(0, fs, "/solo")
            return fh

        fh = env.run(env.process(proc()))
        assert fh.file.name == "/solo"


class TestIndependentWrites:
    @pytest.mark.parametrize("method", [IND_POSIX, IND_LIST, IND_SIEVE])
    def test_write_at_list_routes_by_hint(self, method):
        env = Environment()
        fs = FileSystem(env, fast_pvfs())

        def proc():
            fh = yield from MPIIOFile.open_independent(
                0, fs, "/out", MPIIOHints(ind_wr_method=method, sync_after_write=False)
            )
            regions = [(i * 1000, 500) for i in range(10)]
            datas = [b"z" * 500] * 10
            yield from fh.write_at_list(0, regions, datas)
            return fh

        fh = env.run(env.process(proc()))
        assert fh.file.bytestore.total_bytes() == 5000

    def test_sync_after_write_flag(self):
        for sync, expected in ((True, 4), (False, 0)):
            env = Environment()
            fs = FileSystem(env, fast_pvfs())

            def proc(s=sync):
                fh = yield from MPIIOFile.open_independent(
                    0, fs, "/out", MPIIOHints(sync_after_write=s)
                )
                yield from fh.write_at(0, 0, 100, b"y" * 100)

            env.run(env.process(proc()))
            assert fs.total_syncs() == expected

    def test_write_at_contiguous(self):
        env = Environment()
        fs = FileSystem(env, fast_pvfs())

        def proc():
            fh = yield from MPIIOFile.open_independent(0, fs, "/out")
            yield from fh.write_at(0, 123, 8, b"abcdefgh")
            return fh

        fh = env.run(env.process(proc()))
        assert fh.file.bytestore.read(123, 8) == b"abcdefgh"


class TestViews:
    def test_write_through_strided_view(self):
        env = Environment()
        fs = FileSystem(env, fast_pvfs())

        def proc():
            fh = yield from MPIIOFile.open_independent(
                0, fs, "/out", MPIIOHints(sync_after_write=False)
            )
            # Pattern: 4 bytes at 0 and at 8 (extent 12), tiled twice.
            view = Vector(count=2, blocklength=4, stride=8, base=Bytes(1))
            yield from fh.write_view(0, view, 100, 16, b"AAAABBBBCCCCDDDD")
            return fh

        fh = env.run(env.process(proc()))
        bs = fh.file.bytestore
        assert bs.read(100, 4) == b"AAAA"
        assert bs.read(108, 4) == b"BBBB"
        assert bs.read(112, 4) == b"CCCC"  # second tile starts at 100+12
        assert bs.read(120, 4) == b"DDDD"
        assert bs.total_bytes() == 16


class TestCollectiveViaFile:
    def test_write_at_all_with_sync(self):
        world = MpiWorld(nranks=4)
        fs = FileSystem(world.env, fast_pvfs())

        def main(comm):
            fh = yield from MPIIOFile.open(comm, fs, "/out")
            regions = [((i * comm.size + comm.rank) * 100, 100) for i in range(4)]
            datas = [bytes([comm.rank]) * 100] * 4
            yield from fh.write_at_all(comm, regions, datas)

        world.spawn_all(main)
        world.run()
        f = fs.lookup("/out")
        assert f.bytestore.is_dense(1600)
        assert fs.total_syncs() > 0
