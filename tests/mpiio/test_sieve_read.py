"""Data-sieving read edge cases: holes, overlaps, duplicate regions.

Mirrors the PR 2 ``datasieve_write`` overlap-accounting suite on the read
side, drawing the adversarial region lists from the shared seeded
generator in :mod:`tests.mpiio.sieve_fixtures` so both suites stay in
lockstep.
"""

import pytest

from repro.mpiio import datasieve_read, datasieve_write, list_read, posix_read
from repro.sim import Environment
from tests.mpiio.sieve_fixtures import (
    EDGE_SEEDS,
    edge_regions,
    expected_bytes,
    payloads_for,
)
from tests.mpiio.test_noncontig import make_fs


def write_then_read(read_method, regions, datas, read_regions=None, **read_kwargs):
    """Write ``regions`` with a sieving write (the one write method whose
    overlap/duplicate semantics the PR 2 suite pins — the bytestore itself
    rejects overlapping direct writes), then read ``read_regions``
    (default: the same list) back with ``read_method``."""
    env = Environment()
    fs = make_fs(env)

    def proc():
        f = yield from fs.open(0, "/out")
        yield from datasieve_write(fs, 0, f, regions, datas)
        result = yield from read_method(
            fs, 0, f, read_regions if read_regions is not None else regions,
            **read_kwargs,
        )
        return f, result

    f, result = env.run(env.process(proc()))
    return fs, f, result


class TestSieveReadEdges:
    @pytest.mark.parametrize("seed", EDGE_SEEDS)
    def test_seeded_edge_regions_slice_correctly(self, seed):
        """Each region's read equals the stored last-writer image, holes,
        overlaps, and duplicates included."""
        regions = edge_regions(seed)
        datas = payloads_for(regions)
        image = expected_bytes(regions, datas)
        _, _, result = write_then_read(datasieve_read, regions, datas)
        assert len(result) == len(regions)
        for (offset, length), got in zip(regions, result):
            want = bytes(image.get(offset + k, 0) for k in range(length))
            assert got == want

    @pytest.mark.parametrize("seed", EDGE_SEEDS)
    def test_sieve_agrees_with_posix_and_list(self, seed):
        """All three independent read methods are interchangeable."""
        regions = edge_regions(seed)
        datas = payloads_for(regions)
        _, _, by_sieve = write_then_read(datasieve_read, regions, datas)
        _, _, by_posix = write_then_read(posix_read, regions, datas)
        _, _, by_list = write_then_read(list_read, regions, datas)
        assert by_sieve == by_posix == by_list

    @pytest.mark.parametrize("seed", EDGE_SEEDS)
    def test_tiny_buffer_windows_are_equivalent(self, seed):
        """Forcing many staging windows must not change a single byte."""
        regions = edge_regions(seed)
        datas = payloads_for(regions)
        _, _, one_window = write_then_read(datasieve_read, regions, datas)
        _, _, many_windows = write_then_read(
            datasieve_read, regions, datas, buffer_size=1024
        )
        assert one_window == many_windows

    def test_duplicate_regions_each_get_their_slot(self):
        """The write-side duplicate bug's read mirror: two identical
        (offset, length) regions must produce two result entries, both
        holding the stored bytes (the later write won)."""
        regions = [(0, 4), (0, 4), (8, 4)]
        datas = [b"AAAA", b"BBBB", b"CCCC"]
        _, _, result = write_then_read(datasieve_read, regions, datas)
        assert result == [b"BBBB", b"BBBB", b"CCCC"]

    def test_overlapping_read_regions_slice_own_views(self):
        regions = [(0, 6), (4, 6)]
        datas = [b"aaaaaa", b"bbbbbb"]
        _, _, result = write_then_read(datasieve_read, regions, datas)
        assert result == [b"aaaabb", b"bbbbbb"]

    def test_holes_between_regions_read_zero_filled(self):
        """The sieving staging read covers the hole; the hole bytes come
        back zero-filled in any region that spans them."""
        written = [(0, 4), (8, 4)]
        datas = [b"AAAA", b"BBBB"]
        _, _, result = write_then_read(
            datasieve_read, written, datas, read_regions=[(0, 12)]
        )
        assert result == [b"AAAA\x00\x00\x00\x00BBBB"]

    def test_hole_bytes_are_charged_to_sieving(self):
        """Reading [(0,600), (1200,300)] stages the [0,1500) extent: the
        600-byte hole is read too and the servers see it."""
        regions = [(0, 600), (1200, 300)]
        datas = [b"a" * 600, b"c" * 300]
        fs, _, _ = write_then_read(datasieve_read, regions, datas)
        assert sum(s.stats.bytes_read for s in fs.servers) >= 1500

    def test_empty_region_list_is_a_noop(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/out")
            result = yield from datasieve_read(fs, 0, f, [])
            return result

        assert env.run(env.process(proc())) == []
        assert fs.total_requests() == 0
