"""Shared region-list generator for the data-sieving edge-case suites.

The write suite (PR 2) and the read suite exercise the same adversarial
shapes — holes between regions, overlapping regions, and exact duplicates
— so both draw their region lists from this one seeded generator and any
new edge shape lands in both suites at once.
"""

import random
from typing import List, Tuple

Region = Tuple[int, int]

#: Seeds the parametrized edge tests iterate over.
EDGE_SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)


def edge_regions(seed: int, nregions: int = 12) -> List[Region]:
    """A seeded region list mixing holes, adjacency, overlaps, duplicates.

    Offsets grow mostly monotonically (like real per-query result lists)
    but each step draws one of four shapes: a gap (sieving must pre-read
    the hole), exact adjacency (the hole-free fast path), a backward
    overlap into the previous region, or a literal duplicate of it.
    """
    rng = random.Random(seed)
    regions: List[Region] = []
    cursor = rng.randrange(0, 512)
    prev: Region = (cursor, 0)
    for _ in range(nregions):
        length = rng.randrange(1, 5000)
        shape = rng.choice(("gap", "adjacent", "overlap", "duplicate"))
        if shape == "duplicate" and prev[1]:
            regions.append(prev)
            continue
        if shape == "overlap" and prev[1] > 1:
            offset = prev[0] + rng.randrange(1, prev[1])
        elif shape == "adjacent":
            offset = cursor
        else:  # gap
            offset = cursor + rng.randrange(1, 20_000)
        regions.append((offset, length))
        prev = (offset, length)
        cursor = max(cursor, offset + length)
    return regions


def payloads_for(regions: List[Region]) -> List[bytes]:
    """Position-distinct payloads: region i repeats the byte 'A' + i % 26.

    Distinct per *position*, not per (offset, length), so a duplicated
    region carries a different payload than its twin — the exact shape
    that once collapsed in a region-keyed dict.
    """
    return [
        bytes([65 + i % 26]) * length for i, (_, length) in enumerate(regions)
    ]


def expected_bytes(regions: List[Region], payloads: List[bytes]) -> dict:
    """The byte each written offset must hold: later regions win overlaps."""
    image: dict = {}
    for (offset, length), payload in zip(regions, payloads):
        for k in range(length):
            image[offset + k] = payload[k]
    return image
