"""Derived datatypes and flattening (ROMIO's ADIOI_Flatten analogue)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpiio import Bytes, Contiguous, Hindexed, Struct, Vector, tile_view


class TestBytes:
    def test_flatten(self):
        assert Bytes(10).flatten() == [(0, 10)]
        assert Bytes(0).flatten() == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Bytes(-1)

    def test_size_and_extent(self):
        t = Bytes(7)
        assert t.size == 7
        assert t.extent == 7


class TestContiguous:
    def test_of_bytes_coalesces(self):
        t = Contiguous(3, Bytes(4))
        assert t.flatten() == [(0, 12)]
        assert t.size == 12
        assert t.extent == 12

    def test_of_vector_keeps_holes(self):
        inner = Vector(count=2, blocklength=1, stride=2, base=Bytes(1))
        t = Contiguous(2, inner)
        # inner: bytes at 0 and 2, extent 3 => second copy at 3 and 5.
        assert t.flatten() == [(0, 1), (2, 2), (5, 1)]


class TestVector:
    def test_strided_blocks(self):
        t = Vector(count=3, blocklength=2, stride=4, base=Bytes(1))
        assert t.flatten() == [(0, 2), (4, 2), (8, 2)]
        assert t.size == 6
        assert t.extent == 10  # (3-1)*4 + 2

    def test_unit_stride_coalesces(self):
        t = Vector(count=4, blocklength=1, stride=1, base=Bytes(8))
        assert t.flatten() == [(0, 32)]

    def test_empty(self):
        t = Vector(count=0, blocklength=2, stride=4, base=Bytes(1))
        assert t.flatten() == []
        assert t.extent == 0


class TestHindexed:
    def test_explicit_displacements(self):
        t = Hindexed((2, 3), (10, 100), Bytes(1))
        assert t.flatten() == [(10, 2), (100, 3)]
        assert t.size == 5

    def test_of_bytes_helper(self):
        t = Hindexed.of_bytes([(0, 5), (20, 7)])
        assert t.flatten() == [(0, 5), (20, 7)]

    def test_misaligned_lists_rejected(self):
        with pytest.raises(ValueError):
            Hindexed((1, 2), (0,), Bytes(1))

    def test_adjacent_blocks_coalesce(self):
        t = Hindexed((4, 4), (0, 4), Bytes(1))
        assert t.flatten() == [(0, 8)]


class TestStruct:
    def test_mixed_fields(self):
        t = Struct(((0, Bytes(4)), (10, Vector(2, 1, 2, Bytes(1)))))
        assert t.flatten() == [(0, 4), (10, 1), (12, 1)]
        assert t.size == 6

    def test_empty(self):
        t = Struct(())
        assert t.flatten() == []
        assert t.extent == 0


class TestTileView:
    def test_contiguous_view(self):
        regions = tile_view(Bytes(100), view_offset=50, nbytes=250)
        assert regions == [(50, 250)]  # tiles coalesce into one run

    def test_strided_view_tiles(self):
        view = Vector(count=2, blocklength=10, stride=20, base=Bytes(1))
        # Pattern: 10 bytes at 0, 10 at 20; extent 30.  The second tile's
        # first block (at 30) is adjacent to the first tile's second block
        # (at 20), so they coalesce.
        regions = tile_view(view, view_offset=0, nbytes=40)
        assert regions == [(0, 10), (20, 20), (50, 10)]

    def test_partial_final_tile(self):
        view = Vector(count=2, blocklength=10, stride=20, base=Bytes(1))
        regions = tile_view(view, view_offset=0, nbytes=15)
        assert regions == [(0, 10), (20, 5)]

    def test_zero_bytes(self):
        assert tile_view(Bytes(10), 0, 0) == []

    def test_empty_view_with_data_rejected(self):
        with pytest.raises(ValueError):
            tile_view(Bytes(0), 0, 10)

    def test_total_length_preserved(self):
        view = Hindexed.of_bytes([(3, 7), (50, 2)])
        regions = tile_view(view, view_offset=1000, nbytes=100)
        assert sum(length for _, length in regions) == 100
        assert all(offset >= 1000 for offset, _ in regions)


# -- property tests --------------------------------------------------------

region_lists = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(1, 100)),
    min_size=1,
    max_size=10,
)


@given(regions=region_lists)
@settings(max_examples=100, deadline=None)
def test_property_hindexed_size_is_sum(regions):
    t = Hindexed.of_bytes(regions)
    assert t.size == sum(l for _, l in regions)


@given(
    count=st.integers(0, 20),
    blocklength=st.integers(0, 10),
    stride=st.integers(1, 30),
    unit=st.integers(1, 8),
)
@settings(max_examples=100, deadline=None)
def test_property_vector_flatten_consistent(count, blocklength, stride, unit):
    """Flattened regions are disjoint, ordered, and sum to `size` whenever
    stride >= blocklength (the non-self-overlapping case)."""
    if stride < blocklength:
        stride = blocklength
    t = Vector(count, blocklength, stride, Bytes(unit))
    flat = t.flatten()
    assert sum(l for _, l in flat) == t.size
    for (o1, l1), (o2, l2) in zip(flat, flat[1:]):
        assert o1 + l1 < o2 or (o1 + l1 <= o2)  # ordered, disjoint


@given(
    nbytes=st.integers(0, 500),
    offset=st.integers(0, 1000),
    count=st.integers(1, 5),
    blocklength=st.integers(1, 10),
    extra_stride=st.integers(0, 10),
)
@settings(max_examples=100, deadline=None)
def test_property_tile_view_writes_exactly_nbytes(
    nbytes, offset, count, blocklength, extra_stride
):
    view = Vector(count, blocklength, blocklength + extra_stride, Bytes(1))
    regions = tile_view(view, offset, nbytes)
    assert sum(l for _, l in regions) == nbytes
    # Regions are sorted and disjoint.
    for (o1, l1), (o2, l2) in zip(regions, regions[1:]):
        assert o1 + l1 <= o2
