"""Independent noncontiguous write methods: POSIX vs list I/O vs sieving."""

import pytest

from repro.mpi.network import NetworkConfig
from repro.mpiio import datasieve_write, listio_write, posix_write
from repro.pvfs import FileSystem, PVFSConfig
from repro.sim import Environment

MIB = 1024 * 1024


def make_fs(env, **kwargs):
    defaults = dict(
        nservers=4,
        strip_size=64 * 1024,
        network=NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB, cpu_overhead_s=0),
        client_pipeline_Bps=1000 * MIB,
        store_data=True,
    )
    defaults.update(kwargs)
    return FileSystem(env, PVFSConfig(**defaults))


INTERLEAVED = [(i * 10_000, 3_000) for i in range(40)]


def run_method(method, regions=INTERLEAVED, **fs_kwargs):
    env = Environment()
    fs = make_fs(env, **fs_kwargs)

    def proc():
        f = yield from fs.open(0, "/out")
        datas = [b"%c" % (65 + i % 26) * length for i, (_, length) in enumerate(regions)]
        yield from method(fs, 0, f, regions, datas)
        return f

    f = env.run(env.process(proc()))
    return env.now, fs, f


class TestCorrectness:
    @pytest.mark.parametrize("method", [posix_write, listio_write, datasieve_write])
    def test_all_methods_write_same_extents(self, method):
        _, fs, f = run_method(method)
        assert f.bytestore.extents() == [
            (offset, offset + length) for offset, length in INTERLEAVED
        ]

    @pytest.mark.parametrize("method", [posix_write, listio_write, datasieve_write])
    def test_content_preserved(self, method):
        _, _, f = run_method(method)
        offset, length = INTERLEAVED[3]
        assert f.bytestore.read(offset, 4) == b"DDDD"

    def test_empty_regions_are_noops(self):
        for method in (posix_write, listio_write, datasieve_write):
            env = Environment()
            fs = make_fs(env)

            def proc(m=method):
                f = yield from fs.open(0, "/out")
                yield from m(fs, 0, f, [])

            env.run(env.process(proc()))
            assert fs.total_requests() == 0


class TestTimingRelationships:
    def test_listio_beats_posix(self):
        """The paper's core claim: list I/O amortizes per-request costs."""
        t_posix, fs_posix, _ = run_method(posix_write)
        t_list, fs_list, _ = run_method(listio_write)
        assert t_list < t_posix
        # POSIX issues one wire request per region; list batches them.
        assert fs_list.total_requests() < fs_posix.total_requests()

    def test_posix_requests_equal_region_server_pairs(self):
        _, fs, _ = run_method(posix_write, regions=[(0, 1000), (100_000, 1000)])
        assert fs.total_requests() == 2

    def test_listio_respects_max_regions(self):
        regions = [(i * 10_000, 100) for i in range(100)]
        _, fs, _ = run_method(listio_write, regions=regions, nservers=1,
                              listio_max_regions=64)
        assert fs.servers[0].stats.requests == 2  # 64 + 36

    def test_sieving_reads_covering_extent(self):
        _, fs, _ = run_method(datasieve_write)
        assert sum(s.stats.bytes_read for s in fs.servers) > 0


class TestSievingOverlapAccounting:
    def run_sieve(self, regions, datas):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/out")
            yield from datasieve_write(fs, 0, f, regions, datas)
            return f

        f = env.run(env.process(proc()))
        return fs, f

    def test_overlapping_regions_still_pre_read(self):
        """Overlaps double-counted the coverage sum: [0,600)+[400,1000)
        summed to 1200 over a 1500-byte run and, with a third region
        [1000,1500), 'covered' the run exactly — skipping the required
        read-modify-write pre-read of the hole-free-looking-but-holed run.
        """
        # [0, 600) + [400, 1000) overlap by 200 bytes; [1200, 1500) leaves
        # the gap [1000, 1200) uncovered.  Raw length sum = 600+600+300 =
        # 1500 == run length, so the buggy accounting skipped the read.
        regions = [(0, 600), (400, 600), (1200, 300)]
        datas = [b"a" * 600, b"b" * 600, b"c" * 300]
        fs, _ = self.run_sieve(regions, datas)
        assert sum(s.stats.bytes_read for s in fs.servers) > 0

    def test_exactly_tiling_regions_skip_pre_read(self):
        """The flip side: distinct regions that truly tile the run must
        still skip the read (ROMIO's hole-free fast path)."""
        regions = [(0, 600), (600, 600), (1200, 300)]
        datas = [b"a" * 600, b"b" * 600, b"c" * 300]
        fs, _ = self.run_sieve(regions, datas)
        assert sum(s.stats.bytes_read for s in fs.servers) == 0

    def test_duplicate_regions_replay_positional_payloads(self):
        """Two identical (offset, length) regions used to collapse in a
        region-keyed dict, replaying one payload twice.  Payloads must be
        indexed by position; the later write wins in the store."""
        regions = [(0, 4), (0, 4), (8, 4)]
        datas = [b"AAAA", b"BBBB", b"CCCC"]
        fs, f = self.run_sieve(regions, datas)
        assert f.bytestore.read(0, 4) == b"BBBB"
        assert f.bytestore.read(8, 4) == b"CCCC"

    def test_overlap_content_last_writer_wins(self):
        regions = [(0, 6), (4, 6)]
        datas = [b"aaaaaa", b"bbbbbb"]
        _, f = self.run_sieve(regions, datas)
        assert f.bytestore.read(0, 10) == b"aaaabbbbbb"

    def test_seeded_edge_regions_store_last_writer_image(self):
        """The seeded generator shared with the read suite: whatever mix
        of holes, overlaps, and duplicates it draws, the stored image is
        the in-order last-writer merge."""
        from tests.mpiio.sieve_fixtures import (
            EDGE_SEEDS,
            edge_regions,
            expected_bytes,
            payloads_for,
        )

        for seed in EDGE_SEEDS:
            regions = edge_regions(seed)
            datas = payloads_for(regions)
            image = expected_bytes(regions, datas)
            _, f = self.run_sieve(regions, datas)
            for offset, length in regions:
                want = bytes(image[offset + k] for k in range(length))
                assert f.bytestore.read(offset, length) == want, seed
