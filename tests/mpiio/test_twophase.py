"""Two-phase collective writes: correctness, aggregation, synchronization."""

import pytest

from repro.mpi import MpiWorld, NetworkConfig
from repro.mpiio import MPIIOHints, two_phase_write_all
from repro.pvfs import FileSystem, PVFSConfig
from repro.sim import Environment

MIB = 1024 * 1024


def make_stack(nranks, **fs_kwargs):
    world = MpiWorld(
        nranks=nranks,
        network=NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB),
    )
    defaults = dict(
        nservers=4,
        network=NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB, cpu_overhead_s=0),
        client_pipeline_Bps=1000 * MIB,
        store_data=True,
    )
    defaults.update(fs_kwargs)
    fs = FileSystem(world.env, PVFSConfig(**defaults))
    return world, fs


def interleaved_regions(rank, size, blocks=8, block=1000):
    return [((i * size + rank) * block, block) for i in range(blocks)]


class TestCorrectness:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 7])
    def test_dense_interleaved_write(self, nranks):
        world, fs = make_stack(nranks)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            regions = interleaved_regions(comm.rank, comm.size)
            datas = [bytes([comm.rank]) * length for _, length in regions]
            yield from two_phase_write_all(comm, fs, f, regions, datas)

        world.spawn_all(main)
        world.run()
        f = fs.lookup("/out")
        total = 8 * 1000 * nranks
        assert f.bytestore.is_dense(total)
        assert f.bytestore.read(0, 1) == bytes([0])
        if nranks > 1:
            assert f.bytestore.read(1000, 1) == bytes([1])

    def test_some_ranks_empty(self):
        """Ranks without data still participate (the sync the paper studies)."""
        world, fs = make_stack(4)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            if comm.rank == 2:
                regions, datas = [], None
            else:
                regions = [(comm.rank * 1000, 1000)]
                datas = [bytes([comm.rank])*1000]
            yield from two_phase_write_all(comm, fs, f, regions, datas)
            return world.env.now

        world.spawn_all(main)
        out = world.run()
        f = fs.lookup("/out")
        assert f.bytestore.total_bytes() == 3000

    def test_all_ranks_empty(self):
        world, fs = make_stack(3)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            yield from two_phase_write_all(comm, fs, f, [], None)

        world.spawn_all(main)
        world.run()
        assert fs.lookup("/out").bytestore.total_bytes() == 0

    def test_misaligned_datas_rejected(self):
        world, fs = make_stack(2)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            with pytest.raises(ValueError):
                yield from two_phase_write_all(comm, fs, f, [(0, 10)], [])
            yield comm.env.timeout(0)

        world.spawn_all(main)
        world.run()


class TestAggregation:
    def test_aggregators_issue_few_large_requests(self):
        """Interleaved regions become per-aggregator contiguous writes."""
        world, fs = make_stack(4, nservers=2)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            regions = interleaved_regions(comm.rank, comm.size, blocks=32, block=512)
            datas = [bytes([comm.rank]) * l for _, l in regions]
            hints = MPIIOHints(cb_nodes=2, sync_after_write=False)
            yield from two_phase_write_all(comm, fs, f, regions, datas, hints)

        world.spawn_all(main)
        world.run()
        total_regions = sum(s.stats.regions for s in fs.servers)
        # 4 ranks x 32 blocks = 128 logical regions; after aggregation the
        # servers see only a handful of contiguous runs (split by strips).
        assert total_regions < 20

    def test_cb_buffer_size_forces_rounds(self):
        """A small collective buffer produces multiple exchange+write rounds
        without corrupting the output."""
        world, fs = make_stack(3)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            regions = interleaved_regions(comm.rank, comm.size, blocks=16, block=2048)
            datas = [bytes([comm.rank + 1]) * l for _, l in regions]
            hints = MPIIOHints(cb_nodes=2, cb_buffer_size=8192, sync_after_write=False)
            yield from two_phase_write_all(comm, fs, f, regions, datas, hints)

        world.spawn_all(main)
        world.run()
        f = fs.lookup("/out")
        assert f.bytestore.is_dense(3 * 16 * 2048)
        assert f.bytestore.read(2048, 1) == bytes([2])


class TestSynchronization:
    def test_collective_blocks_until_slowest_arrives(self):
        """The inherent synchronization cost: an early rank cannot finish
        the collective before a late rank enters it."""
        world, fs = make_stack(3)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            yield comm.env.timeout(0.5 * comm.rank)  # stagger entry
            regions = [(comm.rank * 100, 100)]
            yield from two_phase_write_all(
                comm, fs, f, regions, [b"x" * 100],
                MPIIOHints(sync_after_write=False),
            )
            return comm.env.now

        world.spawn_all(main)
        out = world.run()
        assert min(out.values()) >= 1.0  # even rank 0 waits for rank 2


class TestWindowEdgeCases:
    def test_empty_window_rounds_skipped(self):
        """Uneven file domains leave the short aggregator with w_lo >= w_hi
        in late rounds; those rounds must be skipped without exchanging or
        writing garbage."""
        world, fs = make_stack(4)
        span = 6001  # not divisible by 4: last domain is 1498 < fd_size 1501

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            lo = comm.rank * (span // 4)
            hi = span if comm.rank == 3 else (comm.rank + 1) * (span // 4)
            regions = [(lo, hi - lo)]
            datas = [bytes([comm.rank + 1]) * (hi - lo)]
            # cb_buffer_size 1500 < fd_size 1501 forces a second round in
            # which the last aggregator's window is empty (w_lo >= w_hi).
            hints = MPIIOHints(cb_nodes=4, cb_buffer_size=1500, sync_after_write=False)
            yield from two_phase_write_all(comm, fs, f, regions, datas, hints)

        world.spawn_all(main)
        world.run()
        f = fs.lookup("/out")
        assert f.bytestore.is_dense(span)
        assert f.bytestore.read(0, 1) == bytes([1])
        assert f.bytestore.read(span - 1, 1) == bytes([4])

    def test_all_ranks_empty_still_synchronize(self):
        """The all-empty collective is a pure barrier: every rank returns at
        the same instant, no data motion, no server requests."""
        world, fs = make_stack(3)

        def main(comm):
            f = yield from fs.open(comm.global_rank, "/out")
            yield comm.env.timeout(0.25 * comm.rank)  # stagger entry
            yield from two_phase_write_all(comm, fs, f, [], None)
            return comm.env.now

        world.spawn_all(main)
        out = world.run()
        assert fs.lookup("/out").bytestore.total_bytes() == 0
        # Everyone blocks until the slowest participant has entered.
        assert min(out.values()) >= 0.5


class TestCoalescePieces:
    """Duplicate-offset pieces through the aggregator's coalescing step."""

    def test_adjacent_pieces_merge(self):
        from repro.mpiio.twophase import _coalesce_pieces

        regions, datas = _coalesce_pieces([(0, 4, b"aaaa"), (4, 2, b"bb")])
        assert regions == [(0, 6)]
        assert datas == [b"aaaabb"]

    def test_duplicate_offsets_do_not_merge_into_garbage(self):
        from repro.mpiio.twophase import _coalesce_pieces

        regions, datas = _coalesce_pieces(
            [(0, 4, b"aaaa"), (0, 4, b"bbbb"), (8, 2, b"cc")]
        )
        # Two pieces at the same offset stay distinct runs (the write-once
        # store flags the conflict downstream); lengths must stay positive
        # and offsets sorted.
        assert all(length > 0 for _, length in regions)
        assert regions == sorted(regions)
        assert sum(length for _, length in regions) == 10
        # Payload stays aligned with its region.
        for (offset, length), data in zip(regions, datas):
            assert len(data) == length

    def test_unsorted_input_is_sorted_first(self):
        from repro.mpiio.twophase import _coalesce_pieces

        regions, datas = _coalesce_pieces(
            [(8, 2, None), (0, 4, None), (4, 4, None)]
        )
        assert regions == [(0, 10)]
        assert datas is None
