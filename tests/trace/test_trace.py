"""Trace recorder, JSON round-trip, and ASCII timeline rendering."""

import io

import pytest

from repro.trace import (
    Interval,
    TraceRecorder,
    export_json,
    load_json,
    render_timeline,
)


class TestInterval:
    def test_duration(self):
        interval = Interval(0, "compute", 1.0, 3.5)
        assert interval.duration == pytest.approx(2.5)

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, "compute", 3.0, 1.0)


class TestRecorder:
    def test_record_and_query(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 1.0)
        recorder.record(0, "io", 1.0, 1.5)
        recorder.record(1, "compute", 0.0, 2.0)
        assert recorder.ranks() == [0, 1]
        assert recorder.states() == ["compute", "io"]
        assert recorder.total_time(0, "compute") == pytest.approx(1.0)
        assert recorder.total_time(1, "compute") == pytest.approx(2.0)
        assert recorder.span() == (0.0, 2.0)
        assert len(recorder.for_rank(0)) == 2

    def test_begin_end_pairs(self):
        recorder = TraceRecorder()
        recorder.begin(0, "io", 1.0)
        recorder.end(0, "io", 2.0)
        assert recorder.total_time(0, "io") == pytest.approx(1.0)

    def test_double_begin_rejected(self):
        recorder = TraceRecorder()
        recorder.begin(0, "io", 1.0)
        with pytest.raises(ValueError):
            recorder.begin(0, "io", 2.0)

    def test_end_without_begin_rejected(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            recorder.end(0, "io", 2.0)

    def test_empty_span(self):
        assert TraceRecorder().span() == (0.0, 0.0)


class TestJsonRoundTrip:
    def test_round_trip(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 1.0)
        recorder.record(2, "sync", 0.5, 0.75)
        buffer = io.StringIO()
        export_json(recorder, buffer)
        buffer.seek(0)
        loaded = load_json(buffer)
        assert loaded.ranks() == [0, 2]
        assert loaded.total_time(2, "sync") == pytest.approx(0.25)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            load_json(io.StringIO('{"format": "something-else"}'))


class TestTimeline:
    def make_recorder(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 5.0)
        recorder.record(0, "io", 5.0, 10.0)
        recorder.record(1, "data_distribution", 0.0, 10.0)
        return recorder

    def test_render_shape(self):
        text = render_timeline(self.make_recorder(), width=20)
        lines = text.splitlines()
        assert lines[0].startswith("rank   0")
        assert lines[1].startswith("rank   1")
        assert "legend:" in lines[-1]

    def test_glyphs_reflect_states(self):
        text = render_timeline(self.make_recorder(), width=20)
        row0 = text.splitlines()[0]
        assert "C" in row0 and "W" in row0
        row1 = text.splitlines()[1]
        assert "d" in row1

    def test_majority_state_wins_column(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 0.9)
        recorder.record(0, "io", 0.9, 1.0)
        text = render_timeline(recorder, width=10)
        row = text.splitlines()[0]
        assert row.count("C") >= 8

    def test_empty_trace(self):
        assert render_timeline(TraceRecorder()) == "(empty trace)"

    def test_bad_width(self):
        with pytest.raises(ValueError):
            render_timeline(self.make_recorder(), width=0)

    def test_unknown_state_gets_uppercase_initial(self):
        recorder = TraceRecorder()
        recorder.record(0, "zzz-custom", 0.0, 1.0)
        text = render_timeline(recorder, width=5)
        assert "Z" in text.splitlines()[0]
