"""Trace recorder, JSON round-trip, and ASCII timeline rendering."""

import io

import pytest

from repro.trace import (
    Interval,
    TraceRecorder,
    export_json,
    load_json,
    render_timeline,
)


class TestInterval:
    def test_duration(self):
        interval = Interval(0, "compute", 1.0, 3.5)
        assert interval.duration == pytest.approx(2.5)

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, "compute", 3.0, 1.0)


class TestRecorder:
    def test_record_and_query(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 1.0)
        recorder.record(0, "io", 1.0, 1.5)
        recorder.record(1, "compute", 0.0, 2.0)
        assert recorder.ranks() == [0, 1]
        assert recorder.states() == ["compute", "io"]
        assert recorder.total_time(0, "compute") == pytest.approx(1.0)
        assert recorder.total_time(1, "compute") == pytest.approx(2.0)
        assert recorder.span() == (0.0, 2.0)
        assert len(recorder.for_rank(0)) == 2

    def test_begin_end_pairs(self):
        recorder = TraceRecorder()
        recorder.begin(0, "io", 1.0)
        recorder.end(0, "io", 2.0)
        assert recorder.total_time(0, "io") == pytest.approx(1.0)

    def test_double_begin_rejected(self):
        recorder = TraceRecorder()
        recorder.begin(0, "io", 1.0)
        with pytest.raises(ValueError):
            recorder.begin(0, "io", 2.0)

    def test_end_without_begin_rejected(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            recorder.end(0, "io", 2.0)

    def test_empty_span(self):
        assert TraceRecorder().span() == (0.0, 0.0)


class TestAbortDiscard:
    """Crash recovery: a rank's open intervals must not leak.

    Regression for the open-interval leak — a worker crash used to leave
    its ``(rank, state)`` keys open forever, so the rebooted incarnation's
    ``begin`` raised "already open"."""

    def test_abort_closes_all_open_intervals_for_rank(self):
        recorder = TraceRecorder()
        recorder.begin(1, "compute", 2.0)
        recorder.begin(1, "io", 3.0)
        recorder.begin(2, "compute", 2.5)
        closed = recorder.abort(1, 5.0)
        assert [(i.state, i.start, i.end) for i in closed] == [
            ("compute", 2.0, 5.0),
            ("io", 3.0, 5.0),
        ]
        # Truncated intervals are recorded; the other rank is untouched.
        assert recorder.total_time(1, "compute") == pytest.approx(3.0)
        assert recorder.open_states(1) == []
        assert recorder.open_states(2) == ["compute"]

    def test_begin_works_again_after_abort(self):
        """The crash → reboot → begin sequence the bug broke."""
        recorder = TraceRecorder()
        recorder.begin(1, "compute", 2.0)
        recorder.abort(1, 5.0)  # crash at t=5
        recorder.begin(1, "compute", 7.0)  # rebooted incarnation
        recorder.end(1, "compute", 9.0)
        assert recorder.total_time(1, "compute") == pytest.approx(3.0 + 2.0)

    def test_abort_with_nothing_open_is_harmless(self):
        recorder = TraceRecorder()
        assert recorder.abort(0, 1.0) == []
        assert len(recorder) == 0

    def test_discard_drops_without_recording(self):
        recorder = TraceRecorder()
        recorder.begin(0, "compute", 1.0)
        recorder.begin(0, "io", 2.0)
        recorder.begin(3, "io", 2.0)
        assert recorder.discard(0) == 2
        assert len(recorder) == 0
        assert recorder.open_states(0) == []
        recorder.begin(0, "compute", 4.0)  # reopenable immediately
        recorder.end(3, "io", 5.0)  # other rank's interval still pairs up

    def test_crashed_worker_leaves_no_open_intervals(self):
        """End to end: a mid-search crash plus reboot completes the run and
        the recorder holds no open interval for any rank afterwards."""
        from repro.core import S3aSim, SimulationConfig
        from repro.faults import FaultPlan

        plan = FaultPlan.standard(crash_rank=1, crash_time=6.0, downtime_s=2.0)
        cfg = SimulationConfig(
            strategy="ww-list", nprocs=4, nqueries=4, nfragments=8,
            fault_plan=plan,
        )
        recorder = TraceRecorder()
        result = S3aSim(cfg, recorder=recorder).run()
        assert result.file_stats.complete
        assert result.fault_stats["crashes"] == 1
        for rank in range(cfg.nprocs):
            assert recorder.open_states(rank) == []
        # The truncated pre-crash intervals made it into the timeline.
        assert "crashed" in {i.state for i in recorder.intervals}


class TestJsonRoundTrip:
    def test_round_trip(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 1.0)
        recorder.record(2, "sync", 0.5, 0.75)
        buffer = io.StringIO()
        export_json(recorder, buffer)
        buffer.seek(0)
        loaded = load_json(buffer)
        assert loaded.ranks() == [0, 2]
        assert loaded.total_time(2, "sync") == pytest.approx(0.25)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            load_json(io.StringIO('{"format": "something-else"}'))

    def test_round_trip_with_fault_timeline(self):
        """Fault rows (negative server ranks, crash states) survive."""
        recorder = TraceRecorder()
        recorder.record(1, "compute", 0.0, 4.0)
        recorder.record(1, "crashed", 4.0, 6.0)
        recorder.record(-1, "server_degraded", 3.0, 7.0)
        buffer = io.StringIO()
        export_json(recorder, buffer)
        buffer.seek(0)
        loaded = load_json(buffer)
        assert [(i.rank, i.state, i.start, i.end) for i in loaded.intervals] == [
            (-1, "server_degraded", 3.0, 7.0),
            (1, "compute", 0.0, 4.0),
            (1, "crashed", 4.0, 6.0),
        ]


    def test_round_trip_preserves_a_real_cached_run(self):
        """Every interval of a live run survives export -> load, including
        the ``server_flush`` rows the write-back cache records on negative
        server ranks (export reorders by (rank, start); compare as
        multisets)."""
        from dataclasses import replace

        from repro.core import S3aSim, SimulationConfig

        cfg = SimulationConfig(
            strategy="ww-posix", nprocs=4, nqueries=2, nfragments=4
        )
        cfg = cfg.with_(
            pvfs=replace(cfg.pvfs, server_cache_B=4 * 1024 * 1024)
        )
        recorder = TraceRecorder()
        S3aSim(cfg, recorder=recorder).run()
        flush_rows = [i for i in recorder.intervals if i.state == "server_flush"]
        assert flush_rows, "cache never flushed — workload too small"
        assert all(i.rank < 0 for i in flush_rows)

        buffer = io.StringIO()
        export_json(recorder, buffer)
        buffer.seek(0)
        loaded = load_json(buffer)

        def key(interval):
            return (interval.rank, interval.state, interval.start, interval.end)

        assert sorted(map(key, loaded.intervals)) == sorted(
            map(key, recorder.intervals)
        )
        assert loaded.states() and set(loaded.states()) == set(recorder.states())


class TestLoadJsonValidation:
    """Malformed traces must fail with the file and record pinpointed."""

    def load(self, text, source="trace.json"):
        return load_json(io.StringIO(text), source=source)

    def wrap(self, item):
        import json

        return json.dumps({"format": "s3asim-trace-1", "intervals": [item]})

    def test_invalid_json_names_the_source(self):
        with pytest.raises(ValueError, match="trace.json: not valid JSON"):
            self.load("{truncated")

    def test_non_object_top_level(self):
        with pytest.raises(ValueError, match="trace.json: expected a JSON object"):
            self.load("[1, 2, 3]")

    def test_bad_format_names_the_source(self):
        with pytest.raises(ValueError, match="trace.json: not an s3asim trace"):
            self.load('{"format": "slog2"}')

    def test_intervals_must_be_a_list(self):
        with pytest.raises(ValueError, match="'intervals' must be a list"):
            self.load('{"format": "s3asim-trace-1", "intervals": {}}')

    def test_non_object_interval_is_indexed(self):
        with pytest.raises(ValueError, match=r"intervals\[0\]: expected an object"):
            self.load(self.wrap(42))

    def test_rank_must_be_integer(self):
        bad = {"rank": "0", "state": "io", "start": 0, "end": 1}
        with pytest.raises(ValueError, match=r"intervals\[0\]: 'rank' must be"):
            self.load(self.wrap(bad))

    def test_bool_rank_rejected(self):
        bad = {"rank": True, "state": "io", "start": 0, "end": 1}
        with pytest.raises(ValueError, match="'rank' must be an integer"):
            self.load(self.wrap(bad))

    def test_state_must_be_nonempty_string(self):
        bad = {"rank": 0, "state": "", "start": 0, "end": 1}
        with pytest.raises(ValueError, match="'state' must be a non-empty"):
            self.load(self.wrap(bad))

    def test_missing_bound_rejected(self):
        bad = {"rank": 0, "state": "io", "start": 0}
        with pytest.raises(ValueError, match="'end' must be a number, got None"):
            self.load(self.wrap(bad))

    def test_backwards_interval_pinpointed(self):
        bad = {"rank": 0, "state": "io", "start": 5.0, "end": 1.0}
        with pytest.raises(
            ValueError, match=r"intervals\[0\]: ends at 1.0 before it starts"
        ):
            self.load(self.wrap(bad))


class TestTimeline:
    def make_recorder(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 5.0)
        recorder.record(0, "io", 5.0, 10.0)
        recorder.record(1, "data_distribution", 0.0, 10.0)
        return recorder

    def test_render_shape(self):
        text = render_timeline(self.make_recorder(), width=20)
        lines = text.splitlines()
        assert lines[0].startswith("rank   0")
        assert lines[1].startswith("rank   1")
        assert "legend:" in lines[-1]

    def test_glyphs_reflect_states(self):
        text = render_timeline(self.make_recorder(), width=20)
        row0 = text.splitlines()[0]
        assert "C" in row0 and "W" in row0
        row1 = text.splitlines()[1]
        assert "d" in row1

    def test_majority_state_wins_column(self):
        recorder = TraceRecorder()
        recorder.record(0, "compute", 0.0, 0.9)
        recorder.record(0, "io", 0.9, 1.0)
        text = render_timeline(recorder, width=10)
        row = text.splitlines()[0]
        assert row.count("C") >= 8

    def test_empty_trace(self):
        assert render_timeline(TraceRecorder()) == "(empty trace)"

    def test_bad_width(self):
        with pytest.raises(ValueError):
            render_timeline(self.make_recorder(), width=0)

    def test_unknown_state_gets_uppercase_initial(self):
        recorder = TraceRecorder()
        recorder.record(0, "zzz-custom", 0.0, 1.0)
        text = render_timeline(recorder, width=5)
        assert "Z" in text.splitlines()[0]
