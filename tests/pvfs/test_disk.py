"""Disk service-time model: overheads, seeks, streaming, head tracking."""

import pytest

from repro.pvfs import DiskModel

MIB = 1024 * 1024


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            DiskModel(bandwidth_Bps=0)
        with pytest.raises(ValueError):
            DiskModel(op_overhead_s=-1)
        with pytest.raises(ValueError):
            DiskModel(seek_free_gap_B=-1)

    def test_negative_region_length(self):
        disk = DiskModel()
        with pytest.raises(ValueError):
            disk.service_time([(0, -5)], head_position=0)


class TestServiceTime:
    def disk(self, **kwargs):
        defaults = dict(
            op_overhead_s=1e-3,
            region_overhead_s=1e-4,
            seek_penalty_s=5e-3,
            bandwidth_Bps=100 * MIB,
            sync_s=2e-3,
            seek_free_gap_B=1024,
        )
        defaults.update(kwargs)
        return DiskModel(**defaults)

    def test_empty_request_costs_op_overhead(self):
        seconds, head = self.disk().service_time([], head_position=42)
        assert seconds == pytest.approx(1e-3)
        assert head == 42

    def test_sequential_region_from_head_has_no_seek(self):
        disk = self.disk()
        seconds, head = disk.service_time([(0, 100 * MIB)], head_position=0)
        assert seconds == pytest.approx(1e-3 + 1e-4 + 1.0)
        assert head == 100 * MIB

    def test_small_forward_gap_is_seek_free(self):
        disk = self.disk()
        base, _ = disk.service_time([(500, 100)], head_position=0)
        # gap 500 < 1024
        assert base == pytest.approx(1e-3 + 1e-4 + 100 / (100 * MIB))

    def test_large_forward_gap_pays_seek(self):
        disk = self.disk()
        seconds, _ = disk.service_time([(10_000, 100)], head_position=0)
        assert seconds == pytest.approx(1e-3 + 1e-4 + 5e-3 + 100 / (100 * MIB))

    def test_backward_gap_always_seeks(self):
        disk = self.disk()
        seconds, _ = disk.service_time([(0, 100)], head_position=10)
        assert seconds == pytest.approx(1e-3 + 1e-4 + 5e-3 + 100 / (100 * MIB))

    def test_head_persists_across_requests(self):
        disk = self.disk()
        _, head = disk.service_time([(0, 1000)], head_position=0)
        seconds, _ = disk.service_time([(1000, 1000)], head_position=head)
        # Continues where the last request ended: no seek.
        assert seconds == pytest.approx(1e-3 + 1e-4 + 1000 / (100 * MIB))

    def test_interleaved_regions_pay_many_seeks(self):
        """The contiguous-vs-noncontiguous asymmetry the paper leans on."""
        disk = self.disk()
        contiguous = [(i * 1000, 1000) for i in range(32)]
        scattered = [(i * 100_000, 1000) for i in range(32)]
        t_contig, _ = disk.service_time(contiguous, head_position=0)
        t_scatter, _ = disk.service_time(scattered, head_position=0)
        assert t_scatter > t_contig * 5

    def test_amortization_multiregion_vs_separate(self):
        """One list request beats N individual requests on op overhead."""
        disk = self.disk()
        regions = [(i * 100_000, 1000) for i in range(16)]
        t_list, _ = disk.service_time(regions, head_position=0)
        t_posix = 0.0
        head = 0
        for region in regions:
            t, head = disk.service_time([region], head_position=head)
            t_posix += t
        assert t_posix == pytest.approx(t_list + 15 * 1e-3)

    def test_sync_time(self):
        assert self.disk().sync_time() == pytest.approx(2e-3)


class TestZeroLengthRegions:
    """Regression: empty regions must cost nothing and not move the head."""

    def disk(self):
        return DiskModel(
            op_overhead_s=1e-3,
            region_overhead_s=1e-4,
            seek_penalty_s=5e-3,
            bandwidth_Bps=100 * MIB,
            sync_s=2e-3,
            seek_free_gap_B=1024,
        )

    def test_zero_length_region_is_free(self):
        seconds, head = self.disk().service_time([(500, 0)], head_position=0)
        # Only the per-request overhead: no region overhead, no seek.
        assert seconds == pytest.approx(1e-3)
        assert head == 0

    def test_zero_length_far_region_pays_no_seek(self):
        seconds, head = self.disk().service_time(
            [(10_000_000, 0)], head_position=0
        )
        assert seconds == pytest.approx(1e-3)
        assert head == 0

    def test_zero_length_region_does_not_break_sequentiality(self):
        disk = self.disk()
        # Without the fix, the (far, 0) entry moved the head to 10_000_000
        # and charged two spurious seeks; the 1000-byte runs are actually
        # back-to-back and must service seek-free.
        with_empty, head = disk.service_time(
            [(0, 1000), (10_000_000, 0), (1000, 1000)], head_position=0
        )
        without, head2 = disk.service_time(
            [(0, 1000), (1000, 1000)], head_position=0
        )
        assert with_empty == pytest.approx(without)
        assert head == head2 == 2000

    def test_detail_counts_only_nonempty_regions(self):
        detail = self.disk().service_detail(
            [(0, 1000), (500, 0), (100_000, 1000)], head_position=0
        )
        assert detail.regions == 2
        assert detail.seeks == 1
        assert detail.sequential == 1
        assert detail.bytes == 2000
        assert detail.new_head == 101_000


class TestServiceDetail:
    def test_matches_service_time(self):
        disk = DiskModel()
        regions = [(i * 100_000, 512) for i in range(8)]
        seconds, head = disk.service_time(regions, head_position=0)
        detail = disk.service_detail(regions, head_position=0)
        assert detail.seconds == seconds
        assert detail.new_head == head
        assert detail.seeks + detail.sequential == detail.regions == 8
