"""ByteStore: write-once sparse storage with gap/overlap detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pvfs import ByteStore, OverlapError


class TestWrites:
    def test_single_write(self):
        bs = ByteStore()
        bs.write(10, 5, b"hello")
        assert bs.extents() == [(10, 15)]
        assert bs.read(10, 5) == b"hello"
        assert bs.total_bytes() == 5

    def test_zero_length_is_noop(self):
        bs = ByteStore()
        bs.write(10, 0)
        assert bs.extents() == []

    def test_data_length_mismatch(self):
        bs = ByteStore()
        with pytest.raises(ValueError):
            bs.write(0, 5, b"toolongdata")

    def test_negative_inputs(self):
        bs = ByteStore()
        with pytest.raises(ValueError):
            bs.write(-1, 5)
        with pytest.raises(ValueError):
            bs.write(0, -5)

    def test_adjacent_writes_merge(self):
        bs = ByteStore()
        bs.write(0, 4, b"aaaa")
        bs.write(4, 4, b"bbbb")
        assert bs.extents() == [(0, 8)]
        assert bs.read(0, 8) == b"aaaabbbb"

    def test_merge_from_both_sides(self):
        bs = ByteStore()
        bs.write(0, 4, b"aaaa")
        bs.write(8, 4, b"cccc")
        bs.write(4, 4, b"bbbb")  # bridges the gap
        assert bs.extents() == [(0, 12)]
        assert bs.read(0, 12) == b"aaaabbbbcccc"

    def test_out_of_order_writes(self):
        bs = ByteStore()
        bs.write(100, 10)
        bs.write(0, 10)
        bs.write(50, 10)
        assert bs.extents() == [(0, 10), (50, 60), (100, 110)]

    @pytest.mark.parametrize(
        "first,second",
        [
            ((0, 10), (5, 10)),  # tail overlap
            ((5, 10), (0, 10)),  # head overlap
            ((0, 10), (2, 3)),   # contained
            ((2, 3), (0, 10)),   # containing
            ((0, 10), (0, 10)),  # identical
        ],
    )
    def test_overlaps_rejected(self, first, second):
        bs = ByteStore()
        bs.write(*first)
        with pytest.raises(OverlapError):
            bs.write(*second)


class TestReads:
    def test_read_spanning_segments_and_holes(self):
        bs = ByteStore()
        bs.write(0, 4, b"aaaa")
        bs.write(8, 4, b"bbbb")
        assert bs.read(0, 12) == b"aaaa\x00\x00\x00\x00bbbb"

    def test_read_without_stored_data_raises(self):
        bs = ByteStore(store_data=False)
        bs.write(0, 4)
        with pytest.raises(RuntimeError):
            bs.read(0, 4)


class TestInspection:
    def test_gaps(self):
        bs = ByteStore()
        bs.write(10, 10)
        bs.write(30, 10)
        assert bs.gaps() == [(0, 10), (20, 30)]

    def test_is_dense(self):
        bs = ByteStore()
        assert bs.is_dense(0)
        bs.write(0, 10)
        assert bs.is_dense(10)
        assert not bs.is_dense(11)
        bs2 = ByteStore()
        bs2.write(5, 10)
        assert not bs2.is_dense()

    def test_size(self):
        bs = ByteStore()
        assert bs.size() == 0
        bs.write(100, 50)
        assert bs.size() == 150

    def test_content_equal(self):
        a, b = ByteStore(), ByteStore()
        a.write(0, 4, b"abcd")
        b.write(0, 4, b"abcd")
        assert a.content_equal(b)
        c = ByteStore()
        c.write(0, 4, b"abcz")
        assert not a.content_equal(c)
        d = ByteStore()
        d.write(1, 4, b"abcd")
        assert not a.content_equal(d)

    def test_content_equal_extents_only_mode(self):
        a, b = ByteStore(store_data=False), ByteStore(store_data=False)
        a.write(0, 4)
        b.write(0, 4)
        assert a.content_equal(b)


@given(
    st.lists(
        st.tuples(st.integers(0, 2000), st.integers(1, 50)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_property_disjoint_writes_reassemble(regions):
    """Any set of disjoint writes: extents partition exactly the written
    bytes and content reads back correctly regardless of write order."""
    # Make regions disjoint by construction: lay them end to end with gaps.
    laid = []
    cursor = 0
    for gap, length in regions:
        start = cursor + gap
        laid.append((start, length))
        cursor = start + length

    import random

    rng = random.Random(42)
    shuffled = laid[:]
    rng.shuffle(shuffled)

    bs = ByteStore()
    for offset, length in shuffled:
        bs.write(offset, length, bytes([offset % 251]) * length)

    assert bs.total_bytes() == sum(l for _, l in laid)
    for offset, length in laid:
        assert bs.read(offset, length) == bytes([offset % 251]) * length
    # Extents must be sorted, non-overlapping, non-adjacent.
    extents = bs.extents()
    for (s1, e1), (s2, e2) in zip(extents, extents[1:]):
        assert e1 < s2
