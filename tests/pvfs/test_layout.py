"""Striping layout: strip placement, extent mapping (with property tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pvfs import StripingLayout

KIB = 1024


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            StripingLayout(strip_size=0)
        with pytest.raises(ValueError):
            StripingLayout(nservers=0)

    def test_paper_deployment_stripe(self):
        layout = StripingLayout(strip_size=64 * KIB, nservers=16)
        assert layout.stripe_size == 1024 * KIB  # "1-MByte stripe"

    def test_round_robin_server_assignment(self):
        layout = StripingLayout(strip_size=10, nservers=4)
        assert [layout.server_of(i * 10) for i in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_physical_offsets_pack_densely(self):
        layout = StripingLayout(strip_size=10, nservers=4)
        # Strip 0 and strip 4 both live on server 0, back to back.
        assert layout.physical_offset(0) == 0
        assert layout.physical_offset(45) == 15
        assert layout.server_of(45) == 0

    def test_negative_offsets_rejected(self):
        layout = StripingLayout(10, 4)
        with pytest.raises(ValueError):
            layout.server_of(-1)
        with pytest.raises(ValueError):
            layout.map_extent(-5, 10)
        with pytest.raises(ValueError):
            layout.map_extent(0, -1)


class TestMapExtent:
    def test_within_one_strip(self):
        layout = StripingLayout(strip_size=100, nservers=4)
        pieces = layout.map_extent(10, 50)
        assert len(pieces) == 1
        assert pieces[0].server == 0
        assert pieces[0].physical_offset == 10
        assert pieces[0].length == 50

    def test_spanning_strips(self):
        layout = StripingLayout(strip_size=100, nservers=2)
        pieces = layout.map_extent(50, 200)
        assert [(p.server, p.physical_offset, p.length) for p in pieces] == [
            (0, 50, 50),   # rest of strip 0
            (1, 0, 100),   # strip 1
            (0, 100, 50),  # start of strip 2 (second strip on server 0)
        ]

    def test_empty_extent(self):
        layout = StripingLayout(100, 2)
        assert layout.map_extent(10, 0) == []

    def test_map_regions_groups_by_server(self):
        layout = StripingLayout(strip_size=100, nservers=2)
        by_server = layout.map_regions([(0, 100), (100, 100), (200, 100)])
        assert sorted(by_server) == [0, 1]
        assert sum(p.length for p in by_server[0]) == 200
        assert sum(p.length for p in by_server[1]) == 100

    def test_servers_touched(self):
        layout = StripingLayout(strip_size=100, nservers=8)
        assert layout.servers_touched([(0, 100)]) == [0]
        assert layout.servers_touched([(0, 250)]) == [0, 1, 2]
        assert layout.servers_touched([(700, 150)]) == [0, 7]


@given(
    strip_size=st.integers(1, 1 << 16),
    nservers=st.integers(1, 64),
    offset=st.integers(0, 1 << 30),
    length=st.integers(0, 1 << 22),
)
@settings(max_examples=200, deadline=None)
def test_property_extent_mapping_is_a_partition(strip_size, nservers, offset, length):
    """Pieces cover the extent exactly, in order, without overlap, and each
    piece stays inside one strip of one server."""
    layout = StripingLayout(strip_size=strip_size, nservers=nservers)
    pieces = layout.map_extent(offset, length)

    assert sum(p.length for p in pieces) == length
    cursor = offset
    for piece in pieces:
        assert piece.logical_offset == cursor
        assert 0 <= piece.server < nservers
        assert piece.length <= strip_size
        # Consistency of the coordinate transforms at both ends.
        assert layout.server_of(piece.logical_offset) == piece.server
        assert layout.physical_offset(piece.logical_offset) == piece.physical_offset
        last = piece.logical_offset + piece.length - 1
        assert layout.server_of(last) == piece.server
        cursor += piece.length
    assert cursor == offset + length


@given(
    strip_size=st.integers(1, 4096),
    nservers=st.integers(1, 16),
    offsets=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_property_physical_offsets_unique_per_server(strip_size, nservers, offsets):
    """Distinct logical bytes never collide on (server, physical offset)."""
    layout = StripingLayout(strip_size=strip_size, nservers=nservers)
    seen = {}
    for logical in set(offsets):
        key = (layout.server_of(logical), layout.physical_offset(logical))
        assert key not in seen, f"{logical} collides with {seen[key]}"
        seen[key] = logical
