"""The server-side I/O stack must be invisible until asked for.

Default configuration (``disk_sched="fifo"``, ``server_cache_B=0``) must
reproduce the seed implementation bit-for-bit: the stack adds zero events
when disabled (the queue and cache objects are not even constructed).
Enabled configurations must be deterministic in their own right.
"""

import pytest

from repro.core import S3aSim, SimulationConfig
from repro.trace import TraceRecorder

from dataclasses import replace

MIB = 1024 * 1024

SMALL = dict(nprocs=4, nqueries=3, nfragments=6)

#: Seed completion times at ``SMALL`` — same values the obs-layer golden
#: test pins.  Any event the scheduler/cache sweep adds to a *default*
#: run shows up here first.
GOLDEN = {
    "mw": 25.410715708394612,
    "ww-posix": 24.30148509613702,
    "ww-list": 21.376782075112857,
    "ww-coll": 21.81401815133468,
}


def run_one(strategy, **pvfs_overrides):
    cfg = SimulationConfig(strategy=strategy, **SMALL)
    if pvfs_overrides:
        cfg = cfg.with_(pvfs=replace(cfg.pvfs, **pvfs_overrides))
    recorder = TraceRecorder()
    result = S3aSim(cfg, recorder=recorder).run()
    timeline = [(i.rank, i.state, i.start, i.end) for i in recorder.intervals]
    return result, timeline


class TestDefaultIsBitIdentical:
    def test_default_config_is_fifo_cache_off(self):
        cfg = SimulationConfig(**SMALL)
        assert cfg.pvfs.disk_sched == "fifo"
        assert cfg.pvfs.server_cache_B == 0

    @pytest.mark.parametrize("strategy", sorted(GOLDEN))
    def test_default_matches_seed_exactly(self, strategy):
        result, _ = run_one(strategy)
        assert result.elapsed == GOLDEN[strategy]

    @pytest.mark.parametrize("strategy", sorted(GOLDEN))
    def test_explicit_fifo_cache_off_matches_seed_exactly(self, strategy):
        """Spelling the defaults out must not construct a different path."""
        result, timeline = run_one(strategy, disk_sched="fifo", server_cache_B=0)
        default_result, default_timeline = run_one(strategy)
        assert result.elapsed == GOLDEN[strategy]
        assert timeline == default_timeline


class TestEnabledStackDeterminism:
    @pytest.mark.parametrize("strategy", sorted(GOLDEN))
    def test_stack_run_is_deterministic_and_complete(self, strategy):
        first, timeline_a = run_one(
            strategy, disk_sched="elevator", server_cache_B=4 * MIB
        )
        second, timeline_b = run_one(
            strategy, disk_sched="elevator", server_cache_B=4 * MIB
        )
        assert first.file_stats.complete
        assert first.elapsed == second.elapsed
        assert timeline_a == timeline_b

    def test_stack_changes_the_schedule(self):
        """Sanity: the enabled stack is actually on this code path."""
        default, _ = run_one("ww-posix")
        stacked, _ = run_one(
            "ww-posix", disk_sched="elevator", server_cache_B=4 * MIB
        )
        assert stacked.elapsed != default.elapsed

    def test_flush_intervals_land_on_server_rows(self):
        cfg = SimulationConfig(strategy="ww-posix", **SMALL)
        cfg = cfg.with_(pvfs=replace(cfg.pvfs, server_cache_B=4 * MIB))
        recorder = TraceRecorder()
        S3aSim(cfg, recorder=recorder).run()
        flushes = [i for i in recorder.intervals if i.state == "server_flush"]
        assert flushes
        assert all(i.rank < 0 for i in flushes)  # synthetic server rows
