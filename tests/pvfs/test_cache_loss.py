"""Satellite regression: a failing server loses its volatile write cache.

The seed bug: ``IOServer.fail()`` kept dirty write-back-cache extents
alive across the outage, so data that never reached the disk silently
"survived" the crash.  The fix drops the dirty set at fail time, zeroes
the cache gauge, counts ``pvfs.cache_lost_bytes``, and ledgers the lost
extents so the restored daemon re-drives them (from chain peers when
replicated, from clients otherwise).
"""

from dataclasses import replace

from repro.core import S3aSim, SimulationConfig
from repro.faults import FaultPlan, ServerOutage
from repro.mpi.network import NetworkConfig
from repro.pvfs import FileSystem, PVFSConfig

KIB, MIB = 1024, 1024 * 1024


def fast_net():
    return NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB, cpu_overhead_s=0)


def make_fs(env, **kwargs):
    defaults = dict(
        nservers=4,
        strip_size=64 * KIB,
        network=fast_net(),
        store_data=True,
        client_pipeline_Bps=1000 * MIB,
        server_cache_B=4 * MIB,
    )
    defaults.update(kwargs)
    return FileSystem(env, PVFSConfig(**defaults))


def run(env, fragment):
    return env.run(env.process(fragment))


class TestCacheDropOnFail:
    def test_dirty_extents_are_dropped_and_counted(self):
        from repro.sim import Environment

        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)

        run(env, proc())
        server = fs.servers[0]
        assert server.cache is not None and server.cache.dirty_bytes > 0
        lost_expected = server.cache.dirty_bytes

        fs.fail_server(0)
        assert server.cache.dirty_bytes == 0  # gauge zeroed, not just hidden
        assert server.cache.dirty_runs == []
        assert server.stats.cache_lost_bytes == lost_expected
        assert fs.fault_stats["cache_lost_bytes"] == lost_expected
        # The loss is ledgered for re-drive when the daemon returns.
        assert fs.missed[0].outstanding_bytes() >= lost_expected

    def test_clean_cache_loses_nothing(self):
        from repro.sim import Environment

        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)
            yield from fs.sync(0, f)  # flush: cache now clean

        run(env, proc())
        fs.fail_server(0)
        assert fs.servers[0].stats.cache_lost_bytes == 0
        assert fs.fault_stats["cache_lost_bytes"] == 0.0

    def test_redrive_closes_the_ledger(self):
        from repro.sim import Environment

        env = Environment()
        fs = make_fs(env, replicas=2)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)
            fs.fail_server(0)
            lost = fs.servers[0].stats.cache_lost_bytes
            assert lost > 0
            fs.restore_server(0)
            yield env.timeout(60.0)
            assert fs.missed[0].empty
            assert fs.servers[0].stats.rebuild_bytes >= lost

        run(env, proc())


class TestEndToEndRedrive:
    """A mid-run outage with a dirty cache must not cost a single byte.

    ``store_data=True`` makes completeness byte-exact; the invariant
    checker additionally proves the per-server conservation law
    ``write_in == disk_written + dirty + merged + lost``.
    """

    SMALL = dict(nprocs=4, nqueries=3, nfragments=6)
    # The io phase of this workload spans roughly t=6.6..24.3s; the outage
    # must start inside it to catch a dirty cache.
    PLAN = FaultPlan(server_outages=(ServerOutage(server_id=0, start=8.0, duration=3.0),))

    def test_replicated_run_survives_cache_loss(self):
        cfg = SimulationConfig(
            strategy="ww-posix",
            store_data=True,
            check=True,
            fault_plan=self.PLAN,
            pvfs=PVFSConfig(server_cache_B=4 * MIB, replicas=2),
            **self.SMALL,
        )
        app = S3aSim(cfg)
        result = app.run()  # any InvariantViolation fails the test here
        assert result.file_stats.complete
        assert result.fault_stats["cache_lost_bytes"] > 0
        summary = app.world.env.check.summary()
        assert summary["replica_outstanding_bytes"] == 0  # rebuild finished

    def test_unreplicated_run_still_completes(self):
        cfg = SimulationConfig(
            strategy="ww-posix",
            store_data=True,
            check=True,
            fault_plan=self.PLAN,
            pvfs=PVFSConfig(server_cache_B=4 * MIB),
            **self.SMALL,
        )
        result = S3aSim(cfg).run()  # checker raises on any broken law
        assert result.file_stats.complete
