"""Satellite regression: a restarted daemon's elevator starts from scratch.

The seed bug: ``IOServer.restore()`` left the elevator's aging counters
(``QueuedRequest.passes``) from before the outage in place, so surviving
waiters could come back "overdue" and hijack the grant order of the fresh
daemon.  ``DiskQueue.reset()`` zeroes the counters; the property below
proves the post-restart drain order equals a fresh elevator's drain order
for the same waiting set — across many random waiting sets.
"""

import random

from repro.pvfs.sched import (
    DiskQueue,
    ElevatorPolicy,
    QueuedRequest,
    make_policy,
)
from repro.sim import Environment, Event


def drain_order(policy, waiting, head):
    """Grant order a policy produces for a static waiting set (no arrivals)."""
    pending = list(waiting)
    order = []
    while pending:
        index = policy.select(pending, head)
        chosen = pending.pop(index)
        for w in pending:
            w.passes += 1
        order.append(chosen.order)
        head = chosen.offset
    return order


def clone(waiting, passes=0):
    env = Environment()
    return [
        QueuedRequest(offset=w.offset, order=w.order, event=Event(env), passes=passes)
        for w in waiting
    ]


class TestResetProperty:
    def test_post_reset_order_matches_fresh_elevator(self):
        rng = random.Random(20060627)
        for trial in range(200):
            env = Environment()
            n = rng.randint(1, 12)
            waiting = [
                QueuedRequest(
                    offset=rng.randrange(0, 1 << 20),
                    order=i,
                    event=Event(env),
                    passes=rng.randint(0, 20),  # stale pre-outage aging
                )
                for i in range(n)
            ]
            head = rng.randrange(0, 1 << 20)
            aging = rng.randint(1, 10)

            queue = DiskQueue(env, ElevatorPolicy(aging_limit=aging))
            queue.waiting = [
                QueuedRequest(w.offset, w.order, Event(env), w.passes)
                for w in waiting
            ]
            queue.reset()

            got = drain_order(ElevatorPolicy(aging_limit=aging), queue.waiting, head)
            want = drain_order(ElevatorPolicy(aging_limit=aging), clone(waiting), head)
            assert got == want, f"trial {trial}: {got} != {want}"

    def test_stale_aging_really_would_have_diverged(self):
        # Sanity: the property is not vacuous — without reset, a stale
        # overdue waiter jumps the sweep.
        env = Environment()
        waiting = [
            QueuedRequest(offset=1000, order=0, event=Event(env), passes=0),
            QueuedRequest(offset=5000, order=1, event=Event(env), passes=99),
        ]
        policy = ElevatorPolicy(aging_limit=8)
        stale = drain_order(policy, clone_with(waiting), head=0)
        fresh = drain_order(policy, clone(waiting), head=0)
        assert stale != fresh
        assert fresh == [0, 1]  # sweep from 0: offset 1000 first
        assert stale == [1, 0]  # stale overdue waiter hijacked the grant

    def test_reset_keeps_arrival_order(self):
        env = Environment()
        queue = DiskQueue(env, make_policy("elevator"))
        queue.waiting = [
            QueuedRequest(offset=10, order=3, event=Event(env), passes=5),
            QueuedRequest(offset=20, order=7, event=Event(env), passes=2),
        ]
        queue.reset()
        assert [w.order for w in queue.waiting] == [3, 7]
        assert all(w.passes == 0 for w in queue.waiting)

    def test_fifo_queue_reset_is_harmless(self):
        env = Environment()
        queue = DiskQueue(env, make_policy("fifo"))
        queue.reset()  # empty queue: no-op
        assert queue.waiting == []


def clone_with(waiting):
    """Copy a waiting set *keeping* its (stale) pass counters."""
    env = Environment()
    return [
        QueuedRequest(offset=w.offset, order=w.order, event=Event(env), passes=w.passes)
        for w in waiting
    ]
