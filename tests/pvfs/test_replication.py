"""Per-stripe replication: placement, ledger, degraded I/O, rebuild.

The golden rule throughout: ``replicas=1`` is the seed volume bit for bit
(the replicated paths are gated on ``replicas > 1`` and construct zero
events otherwise); ``replicas >= 2`` buys outage survival — degraded-mode
writes, replica-aware read failover, and a background rebuild that closes
the durability gap — at a write-amplification cost the stats expose.
"""

import pytest

from repro.mpi.network import NetworkConfig
from repro.pvfs import (
    REPLICA_SLOT_B,
    FileSystem,
    MissedLedger,
    PVFSConfig,
    StripingLayout,
    merge_extents,
)
from repro.sim import Environment, SimulationError

KIB, MIB = 1024, 1024 * 1024


def fast_net():
    return NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB, cpu_overhead_s=0)


def make_fs(env, **kwargs):
    defaults = dict(
        nservers=4,
        strip_size=64 * KIB,
        network=fast_net(),
        store_data=True,
        client_pipeline_Bps=1000 * MIB,
    )
    defaults.update(kwargs)
    return FileSystem(env, PVFSConfig(**defaults))


def run(env, fragment):
    return env.run(env.process(fragment))


class TestConfig:
    def test_replicas_bounds(self):
        with pytest.raises(ValueError):
            PVFSConfig(nservers=4, replicas=0)
        with pytest.raises(ValueError):
            PVFSConfig(nservers=4, replicas=5)
        assert PVFSConfig(nservers=4, replicas=4).replicas == 4

    def test_parity_is_honestly_rejected(self):
        with pytest.raises(ValueError, match="read-modify-write"):
            PVFSConfig(parity="raid5")

    def test_rebuild_knobs_validated(self):
        with pytest.raises(ValueError):
            PVFSConfig(rebuild_Bps=0)
        with pytest.raises(ValueError):
            PVFSConfig(rebuild_chunk_B=0)

    def test_layout_carries_replicas(self):
        assert PVFSConfig(nservers=8, replicas=3).layout().replicas == 3


class TestPlacement:
    def test_rotated_chains(self):
        layout = StripingLayout(nservers=4, replicas=3)
        assert layout.replica_chain(0) == [0, 1, 2]
        assert layout.replica_chain(3) == [3, 0, 1]

    def test_replica_partitions_never_collide_with_primary(self):
        # Slot-shifted copies land 1 TiB apart per chain slot — far beyond
        # any primary offset the model produces.
        assert StripingLayout.replica_physical(123, 0) == 123
        assert StripingLayout.replica_physical(123, 2) == 2 * REPLICA_SLOT_B + 123

    def test_replica_regions_preserve_order_and_lengths(self):
        regions = [(0, 10), (100, 20)]
        shifted = StripingLayout.replica_regions(regions, 1)
        assert shifted == [(REPLICA_SLOT_B, 10), (REPLICA_SLOT_B + 100, 20)]
        assert StripingLayout.replica_regions(regions, 0) == regions


class TestMissedLedger:
    def test_record_merges_and_counts_growth(self):
        ledger = MissedLedger()
        assert ledger.record([(0, 10)]) == 10
        assert ledger.record([(5, 10)]) == 5  # overlap does not double-count
        assert ledger.outstanding_bytes() == 15
        assert ledger.recorded_bytes == 15

    def test_drain_respects_budget_and_splits(self):
        ledger = MissedLedger()
        ledger.record([(0, 10), (20, 10)])
        assert ledger.drain(12) == [(0, 10), (20, 2)]
        assert ledger.extents == [(22, 30)]

    def test_requeue_restores_without_recounting(self):
        ledger = MissedLedger()
        ledger.record([(0, 10)])
        chunk = ledger.drain(4)
        ledger.requeue(chunk)
        assert ledger.outstanding_bytes() == 10
        assert ledger.recorded_bytes == 10

    def test_abandon_clears(self):
        ledger = MissedLedger()
        ledger.record([(0, 10)])
        assert ledger.abandon() == 10
        assert ledger.empty and ledger.abandoned_bytes == 10

    def test_overlaps(self):
        ledger = MissedLedger()
        ledger.record([(10, 10)])
        assert ledger.overlaps([(15, 1)])
        assert not ledger.overlaps([(0, 10)]) and not ledger.overlaps([(20, 5)])

    def test_merge_extents_utility(self):
        assert merge_extents([(5, 10), (0, 5), (20, 30), (8, 12)]) == [
            (0, 12),
            (20, 30),
        ]


class TestReplicatedWrites:
    def test_write_amplification_counted(self):
        env = Environment()
        fs = make_fs(env, replicas=2)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 256 * KIB)

        run(env, proc())
        total = sum(s.stats.bytes_written for s in fs.servers)
        replica = sum(s.stats.replica_bytes for s in fs.servers)
        assert replica == 256 * KIB  # one extra copy of every byte
        assert total == 2 * 256 * KIB

    def test_replica_copies_live_in_shifted_partition(self):
        env = Environment()
        fs = make_fs(env, replicas=2)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)

        run(env, proc())
        # Strip 0's primary is server 0; its copy rides server 1 at the
        # slot-1 partition, leaving server 1's own primary space untouched.
        assert fs.servers[1].stats.replica_bytes == 64 * KIB

    def test_degraded_write_skips_down_replica_and_ledgers_it(self):
        env = Environment()
        fs = make_fs(env, replicas=2)
        fs.fail_server(1)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)  # chain [0, 1]

        run(env, proc())
        assert fs.fault_stats["degraded_writes"] == 1.0
        assert fs.fault_stats["degraded_write_bytes"] == 64 * KIB
        assert fs.missed[1].outstanding_bytes() == 64 * KIB

    def test_all_replicas_down_backs_off_until_restore(self):
        env = Environment()
        fs = make_fs(env, replicas=2)
        fs.fail_server(0)
        fs.fail_server(1)

        def restore_later():
            yield env.timeout(0.5)
            fs.restore_server(0)
            fs.restore_server(1)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)

        env.process(restore_later())
        run(env, proc())
        assert env.now > 0.5  # the write waited the outage out
        assert fs.fault_stats["retries"] > 0

    def test_rebuild_closes_the_gap(self):
        env = Environment()
        fs = make_fs(env, replicas=2)
        fs.fail_server(1)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 128 * KIB)
            fs.restore_server(1)
            # Give the background rebuild room to drain.
            yield env.timeout(60.0)

        run(env, proc())
        # Server 1 missed both the replica copy of strip 0 and its own
        # primary strip 1 (a chain head can be down too): 128 KiB total.
        assert fs.missed[1].empty
        assert fs.servers[1].stats.rebuild_bytes == 128 * KIB
        assert fs.fault_stats["rebuild_bytes"] == 128 * KIB

    def test_replicas_one_never_creates_ledgers(self):
        env = Environment()
        fs = make_fs(env, replicas=1)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 256 * KIB)

        run(env, proc())
        assert fs.missed == {}
        assert all(s.stats.replica_bytes == 0 for s in fs.servers)


class TestReplicatedReads:
    def test_read_fails_over_to_clean_replica(self):
        env = Environment()
        fs = make_fs(env, replicas=2)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)
            fs.fail_server(0)  # primary of strip 0 goes dark
            yield from fs.read(0, f, 0, 64 * KIB)
            fs.restore_server(0)

        run(env, proc())
        assert fs.fault_stats["read_failovers"] == 1.0
        assert fs.servers[1].stats.bytes_read == 64 * KIB

    def test_read_avoids_replica_with_outstanding_miss(self):
        env = Environment()
        # Rebuild crawls at 1 B/s so the stale window stays open for the
        # whole test — otherwise the background rebuild cleans server 1's
        # copy during the read's backoff and serving it becomes legal.
        fs = make_fs(env, replicas=2, rebuild_Bps=1.0)

        def proc():
            f = yield from fs.open(0, "/a")
            fs.fail_server(1)  # strip 0's copy on server 1 will be missed
            yield from fs.write(0, f, 0, 64 * KIB)
            fs.fail_server(0)

            def restore_later():
                yield env.timeout(0.3)
                fs.restore_server(0)

            env.process(restore_later())
            # Server 1 is up again but its copy is stale (missed extent
            # overlapping the read): the read must wait for server 0, not
            # serve the stale replica.
            fs.restore_server(1)
            before = fs.servers[1].stats.bytes_read
            yield from fs.read(0, f, 0, 64 * KIB)
            assert fs.servers[1].stats.bytes_read == before
            assert fs.servers[0].stats.bytes_read == 64 * KIB

        run(env, proc())
        assert fs.fault_stats["retries"] > 0


class TestServerKill:
    def test_kill_is_permanent_and_abandons_ledger(self):
        env = Environment()
        fs = make_fs(env, replicas=2)
        fs.fail_server(1)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 128 * KIB)

        run(env, proc())
        assert not fs.missed[1].empty
        fs.kill_server(1)
        assert fs.servers[1].dead
        assert fs.missed[1].empty
        # 128 KiB: the missed replica copy of strip 0 plus missed primary
        # strip 1 (server 1 heads that chain and was down for the write).
        assert fs.fault_stats["abandoned_bytes"] == 128 * KIB
        fs.restore_server(1)  # must be a no-op
        assert not fs.servers[1].up

    def test_writes_skip_dead_replica(self):
        env = Environment()
        fs = make_fs(env, replicas=2)
        fs.kill_server(1)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)

        run(env, proc())
        assert fs.fault_stats["dead_replica_skips"] == 1.0
        assert fs.fault_stats["degraded_writes"] == 0.0  # dead != degraded
        assert 1 not in fs.missed  # nothing ledgered for a corpse

    def test_fully_dead_chain_raises(self):
        env = Environment()
        fs = make_fs(env, nservers=2, replicas=2)
        fs.kill_server(0)
        fs.kill_server(1)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 64 * KIB)

        with pytest.raises(SimulationError, match="entirely dead"):
            run(env, proc())


class TestSyncUnderReplication:
    def test_sync_skips_down_server_when_replicated(self):
        env = Environment()
        fs = make_fs(env, replicas=2)
        fs.fail_server(2)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.sync(0, f)
            fs.restore_server(2)

        run(env, proc())
        assert fs.fault_stats["sync_skips"] == 1.0
        assert fs.servers[2].stats.syncs == 0
        assert all(
            s.stats.syncs == 1 for s in fs.servers if s.server_id != 2
        )
