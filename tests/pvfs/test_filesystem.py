"""FileSystem: client ops, parallelism, contention, stats, namespace."""

import pytest

from repro.mpi.network import NetworkConfig
from repro.pvfs import DiskModel, FileSystem, PVFSConfig
from repro.sim import Environment

KIB, MIB = 1024, 1024 * 1024


def fast_net():
    return NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB, cpu_overhead_s=0)


def make_fs(env, **kwargs):
    defaults = dict(
        nservers=4,
        strip_size=64 * KIB,
        network=fast_net(),
        store_data=True,
        client_pipeline_Bps=1000 * MIB,
    )
    defaults.update(kwargs)
    return FileSystem(env, PVFSConfig(**defaults))


def run(env, fragment):
    return env.run(env.process(fragment))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PVFSConfig(nservers=0)
        with pytest.raises(ValueError):
            PVFSConfig(strip_size=0)
        with pytest.raises(ValueError):
            PVFSConfig(listio_max_regions=0)
        with pytest.raises(ValueError):
            PVFSConfig(client_pipeline_Bps=0)

    def test_feynman_preset(self):
        cfg = PVFSConfig.feynman()
        assert cfg.nservers == 16
        assert cfg.strip_size == 64 * KIB


class TestNamespace:
    def test_open_creates(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            return f

        f = run(env, proc())
        assert fs.lookup("/a") is f

    def test_open_no_create_missing(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            with pytest.raises(FileNotFoundError):
                yield from fs.open(0, "/missing", create=False)

        run(env, proc())

    def test_metadata_ops_counted(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            yield from fs.open(0, "/a")   # lookup + create
            yield from fs.open(0, "/a")   # lookup only

        run(env, proc())
        assert fs.metadata.ops == 3


class TestWrites:
    def test_write_records_bytes(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 1000, b"x" * 1000)
            return f

        f = run(env, proc())
        assert f.bytestore.read(0, 4) == b"xxxx"
        assert fs.total_bytes_written() == 1000

    def test_write_list_spans_servers(self):
        env = Environment()
        fs = make_fs(env, nservers=4, strip_size=1000)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write_list(0, f, [(0, 4000)])
            return f

        run(env, proc())
        for server in fs.servers:
            assert server.stats.bytes_written == 1000

    def test_listio_chunking(self):
        env = Environment()
        fs = make_fs(env, nservers=1, listio_max_regions=4)

        def proc():
            f = yield from fs.open(0, "/a")
            regions = [(i * 100, 10) for i in range(10)]
            yield from fs.write_list(0, f, regions)

        run(env, proc())
        # 10 regions on one server at 4 per wire request => 3 requests.
        assert fs.servers[0].stats.requests == 3
        assert fs.servers[0].stats.regions == 10

    def test_datas_alignment_enforced(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            with pytest.raises(ValueError):
                yield from fs.write_list(0, f, [(0, 10), (20, 10)], [b"x" * 10])

        run(env, proc())

    def test_empty_region_list_is_noop(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write_list(0, f, [])

        run(env, proc())
        assert fs.total_requests() == 0


class TestReads:
    def test_read_returns_written_data(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 100, 8, b"abcdefgh")
            data = yield from fs.read(0, f, 100, 8)
            return data

        assert run(env, proc()) == b"abcdefgh"

    def test_read_without_store_returns_none(self):
        env = Environment()
        fs = make_fs(env, store_data=False)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 8)
            return (yield from fs.read(0, f, 0, 8))

        assert run(env, proc()) is None

    def test_read_counts_bytes(self):
        env = Environment()
        fs = make_fs(env)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, 0, 5000)
            yield from fs.read(0, f, 0, 5000)

        run(env, proc())
        assert sum(s.stats.bytes_read for s in fs.servers) == 5000


class TestSync:
    def test_sync_touches_every_server(self):
        env = Environment()
        fs = make_fs(env, nservers=6)

        def proc():
            f = yield from fs.open(0, "/a")
            yield from fs.sync(0, f)

        run(env, proc())
        assert fs.total_syncs() == 6
        assert all(s.stats.syncs == 1 for s in fs.servers)


class TestContention:
    def test_many_clients_beat_one_client(self):
        """Aggregate bandwidth scales with writers (paper Section 2.2)."""
        volume = 64 * MIB

        def one_client_time():
            env = Environment()
            fs = make_fs(env, store_data=False, client_pipeline_Bps=10 * MIB)

            def proc():
                f = yield from fs.open(0, "/a")
                yield from fs.write(0, f, 0, volume)

            run(env, proc())
            return env.now

        def four_client_time():
            env = Environment()
            fs = make_fs(env, store_data=False, client_pipeline_Bps=10 * MIB)
            share = volume // 4

            def client(c):
                f = yield from fs.open(c, "/a")
                yield from fs.write(c, f, c * share, share)

            procs = [env.process(client(c)) for c in range(4)]
            env.run(env.all_of(procs))
            return env.now

        assert four_client_time() < one_client_time() / 2

    def test_server_disk_serializes(self):
        env = Environment()
        # Single server; two clients write disjoint 8 MiB extents.
        fs = make_fs(env, nservers=1, store_data=False,
                     disk=DiskModel(bandwidth_Bps=10 * MIB))

        def client(c):
            f = yield from fs.open(c, "/a")
            yield from fs.write(c, f, c * 8 * MIB, 8 * MIB)

        procs = [env.process(client(c)) for c in range(2)]
        env.run(env.all_of(procs))
        # Disk alone needs 1.6s serialized; parallel clients cannot beat it.
        assert env.now >= 1.6

    def test_client_nic_contention_hook(self):
        """With a shared NIC, FS traffic serializes per client."""
        from repro.mpi.network import Nic

        env = Environment()
        nic = Nic(env, 0)
        fs = FileSystem(
            env,
            PVFSConfig(
                nservers=4,
                network=fast_net(),
                client_pipeline_Bps=10 * MIB,
                store_data=False,
            ),
            client_nic=lambda rank: nic,
        )

        def writer(offset):
            f = yield from fs.open(0, "/a")
            yield from fs.write(0, f, offset, 10 * MIB)

        procs = [env.process(writer(0)), env.process(writer(64 * MIB))]
        env.run(env.all_of(procs))
        # Two 1s client-side serializations through one NIC: >= 2s.
        assert env.now >= 2.0
        assert nic.stats.tx_bytes > 20 * MIB


class TestStragglerInjection:
    def test_validation(self):
        env = Environment()
        fs = make_fs(env)
        with pytest.raises(ValueError):
            fs.degrade_server(0, 0)

    def test_degraded_server_slows_the_volume(self):
        def run_with(factor):
            env = Environment()
            fs = make_fs(env, nservers=4, store_data=False)
            if factor is not None:
                fs.degrade_server(2, factor)

            def proc():
                f = yield from fs.open(0, "/a")
                regions = [(i * 50_000, 5_000) for i in range(64)]
                yield from fs.write_list(0, f, regions)

            env.run(env.process(proc()))
            return env.now

        healthy = run_with(None)
        degraded = run_with(8.0)
        assert degraded > healthy * 2

    def test_only_target_server_is_slowed(self):
        env = Environment()
        fs = make_fs(env, nservers=4)
        original = fs.servers[0].disk
        fs.degrade_server(2, 4.0)
        assert fs.servers[0].disk is original
        assert fs.servers[2].disk.bandwidth_Bps == pytest.approx(
            original.bandwidth_Bps / 4
        )


class TestServerChannels:
    """Regression: read responses used to serialize behind write payloads
    on the server's single ``net_in`` channel."""

    def test_read_response_rides_net_out(self):
        env = Environment()
        fs = make_fs(env, nservers=1, store_data=False)
        assert fs.servers[0].net_out is not fs.servers[0].net_in

    def test_read_and_write_to_same_server_overlap(self):
        # Slow wire so the network term dominates; one server so both
        # operations fight over the same daemon's channels.
        net = NetworkConfig(latency_s=1e-6, bandwidth_Bps=10 * MIB, cpu_overhead_s=0)
        nbytes = 1 * MIB

        def run_pair(concurrent):
            env = Environment()
            fs = make_fs(env, nservers=1, store_data=False, network=net)

            def writer():
                f = yield from fs.open(0, "/a")
                yield from fs.write(0, f, 0, nbytes)

            def reader():
                f = yield from fs.open(1, "/a")
                yield from fs.read(1, f, 0, nbytes)

            if concurrent:
                procs = [env.process(writer()), env.process(reader())]
                env.run(env.all_of(procs))
            else:
                def serial():
                    yield from writer()
                    yield from reader()

                env.run(env.process(serial()))
            return env.now

        overlapped = run_pair(concurrent=True)
        serialized = run_pair(concurrent=False)
        # Full duplex: the response leaves on TX while the payload is
        # still arriving on RX, so the pair beats back-to-back by a
        # clear margin (each direction alone is ~0.1 s of wire time).
        assert overlapped < serialized - 0.05


class TestMetadataMetrics:
    def test_open_counts_metadata_ops(self):
        from repro.obs import MetricsRegistry

        env = Environment()
        env.metrics = MetricsRegistry()
        fs = make_fs(env)

        def proc():
            yield from fs.open(0, "/a")
            yield from fs.open(1, "/b")

        run(env, proc())
        snap = env.metrics.snapshot()
        # The counter agrees with the daemon's own tally (an open is a
        # lookup plus a create, so one client open is two metadata ops).
        assert fs.metadata.ops == 4
        assert snap.counter_total("pvfs.metadata_ops") == fs.metadata.ops
        hist = snap.histogram_summary("pvfs.metadata_seconds")
        assert hist.count == fs.metadata.ops
        assert hist.mean > 0

    def test_metadata_metrics_silent_when_disabled(self):
        env = Environment()
        fs = make_fs(env)
        run(env, fs.open(0, "/a"))
        # Default null registry: ops still tallied, nothing recorded.
        assert not env.metrics.enabled
        assert fs.metadata.ops > 0
