"""Write-back cache: merging, flush triggers, read hits, sync ordering."""

import pytest

from repro.mpi.network import NetworkConfig
from repro.pvfs import DiskModel, FileSystem, IOServer, PVFSConfig
from repro.pvfs.cache import WriteBackCache
from repro.sim import Environment

KIB, MIB = 1024, 1024 * 1024


def make_server(env, cache_B=1 * MIB, **kwargs):
    defaults = dict(
        sched="elevator",
        cache_B=cache_B,
        cache_watermark=0.75,
        cache_idle_flush_s=0.02,
    )
    defaults.update(kwargs)
    return IOServer(env, 0, DiskModel(), **defaults)


def run(env, fragment):
    return env.run(env.process(fragment))


class TestValidation:
    def test_cache_params(self):
        env = Environment()
        server = make_server(env)
        with pytest.raises(ValueError):
            WriteBackCache(server, capacity_B=0)
        with pytest.raises(ValueError):
            WriteBackCache(server, capacity_B=1024, watermark=0.0)
        with pytest.raises(ValueError):
            WriteBackCache(server, capacity_B=1024, idle_flush_s=0)
        with pytest.raises(ValueError):
            WriteBackCache(server, capacity_B=1024, mem_Bps=0)

    def test_config_params(self):
        with pytest.raises(ValueError):
            PVFSConfig(disk_sched="deadline")
        with pytest.raises(ValueError):
            PVFSConfig(elevator_aging=0)
        with pytest.raises(ValueError):
            PVFSConfig(server_cache_B=-1)
        with pytest.raises(ValueError):
            PVFSConfig(cache_watermark=1.5)
        with pytest.raises(ValueError):
            PVFSConfig(cache_idle_flush_s=0)

    def test_default_config_builds_no_stack(self):
        env = Environment()
        server = IOServer(env, 0, DiskModel())
        assert server.disk_queue is None
        assert server.cache is None


class TestDirtyExtentMerging:
    def test_adjacent_and_overlapping_regions_fuse(self):
        env = Environment()
        server = make_server(env)

        def proc():
            yield from server.service_write([(0, 100), (200, 50)])
            yield from server.service_write([(100, 100)])  # bridges the gap
            yield from server.service_write([(240, 100)])  # overlaps the tail

        run(env, proc())
        assert server.cache.dirty_runs == [(0, 340)]
        assert server.cache.dirty_bytes == 340
        # Nothing hit the disk: the write was absorbed at memory speed.
        assert server.stats.requests == 0
        assert server.stats.bytes_written == 0

    def test_disjoint_regions_stay_separate(self):
        env = Environment()
        server = make_server(env)
        run(env, server.service_write([(0, 10), (100, 10)]))
        # Runs are stored as [start, end) extents.
        assert server.cache.dirty_runs == [(0, 10), (100, 110)]

    def test_absorb_is_memory_speed(self):
        env = Environment()
        server = make_server(env, cache_idle_flush_s=1000.0)
        run(env, server.service_write([(0, 64 * KIB)]))
        # Far cheaper than the disk op overhead alone (8e-4 s).
        assert env.now < 2e-4


class TestReadHits:
    def test_covered_read_served_from_memory(self):
        env = Environment()
        server = make_server(env)

        def proc():
            yield from server.service_write([(100, 200)])
            yield from server.service_write([(120, 50)], is_read=True)

        run(env, proc())
        assert server.cache.read_hits == 1
        assert server.cache.read_misses == 0
        assert server.stats.bytes_read == 50
        assert server.stats.requests == 0  # never touched the disk

    def test_uncovered_read_goes_to_disk(self):
        env = Environment()
        server = make_server(env)

        def proc():
            yield from server.service_write([(100, 200)])
            # Partially covered: the daemon reads the whole region from disk.
            yield from server.service_write([(250, 100)], is_read=True)

        run(env, proc())
        assert server.cache.read_hits == 0
        assert server.cache.read_misses == 1
        assert server.stats.requests == 1


class TestFlushTriggers:
    def test_flush_on_sync_orders_data_before_sync(self):
        env = Environment()
        server = make_server(env, cache_idle_flush_s=1000.0)

        def proc():
            yield from server.service_write([(0, 100), (200, 100)])
            assert server.stats.bytes_written == 0  # still only in memory
            yield from server.service_sync()

        run(env, proc())
        # The sync drained the cache first, then paid the sync cost: the
        # dirty extents are on the platter and accounted as one request.
        assert server.cache.dirty_bytes == 0
        assert server.cache.dirty_runs == []
        assert server.stats.bytes_written == 200
        assert server.stats.requests == 1
        assert server.stats.syncs == 1
        assert server.cache.flushes == 1
        # Ordering in time, not just state: the run lasted at least the
        # flush's disk service plus the sync cost.
        disk = server.disk
        flush_s = disk.service_detail([(0, 100), (200, 100)], 0).seconds
        assert env.now >= flush_s + disk.sync_time()

    def test_sync_with_clean_cache_only_pays_sync(self):
        env = Environment()
        server = make_server(env)
        run(env, server.service_sync())
        assert server.stats.syncs == 1
        assert server.stats.requests == 0
        assert server.cache.flushes == 0

    def test_watermark_triggers_background_flush(self):
        env = Environment()
        server = make_server(
            env, cache_B=100 * KIB, cache_watermark=0.5, cache_idle_flush_s=1000.0
        )
        run(env, server.service_write([(0, 60 * KIB)]))  # > 50 KiB watermark
        env.run()  # let the background flush drain
        assert server.cache.flushes == 1
        assert server.cache.dirty_bytes == 0
        assert server.stats.bytes_written == 60 * KIB

    def test_idle_timeout_flushes(self):
        env = Environment()
        server = make_server(env, cache_idle_flush_s=0.5)
        run(env, server.service_write([(0, 1 * KIB)]))
        assert server.cache.dirty_bytes == 1 * KIB
        env.run()  # idle watcher fires at ~0.5 s
        assert server.cache.flushes == 1
        assert server.cache.dirty_bytes == 0
        assert env.now >= 0.5

    def test_capacity_overflow_forces_synchronous_flush(self):
        env = Environment()
        server = make_server(env, cache_B=64 * KIB, cache_idle_flush_s=1000.0)

        def proc():
            yield from server.service_write([(0, 48 * KIB)])
            # Would overflow: the client stalls behind a flush first.
            yield from server.service_write([(100 * KIB, 48 * KIB)])

        run(env, proc())
        assert server.cache.flushes >= 1
        assert server.stats.bytes_written >= 48 * KIB
        assert server.cache.dirty_bytes <= 64 * KIB


class TestEndToEnd:
    def make_fs(self, env, **overrides):
        defaults = dict(
            nservers=4,
            strip_size=64 * KIB,
            network=NetworkConfig(
                latency_s=1e-6, bandwidth_Bps=1000 * MIB, cpu_overhead_s=0
            ),
            store_data=True,
            client_pipeline_Bps=1000 * MIB,
            disk_sched="elevator",
            server_cache_B=1 * MIB,
        )
        defaults.update(overrides)
        return FileSystem(env, PVFSConfig(**defaults))

    def test_cached_volume_write_sync_read_roundtrip(self):
        env = Environment()
        fs = self.make_fs(env)
        payload = bytes(range(256)) * 1024  # 256 KiB across all 4 servers

        def proc():
            f = yield from fs.open(0, "/out")
            yield from fs.write(0, f, 0, len(payload), payload)
            yield from fs.sync(0, f)
            data = yield from fs.read(0, f, 0, len(payload))
            return data

        data = run(env, proc())
        assert data == payload
        assert fs.total_bytes_written() == len(payload)
        assert all(s.cache.dirty_bytes == 0 for s in fs.servers)
        assert fs.total_syncs() == 4

    def test_interleaved_small_writes_seek_less_with_stack(self):
        """The benchmark's claim in miniature: merged flushes beat
        region-at-a-time FIFO service for a WW-POSIX-like pattern."""

        def run_variant(**overrides):
            env = Environment()
            fs = self.make_fs(env, store_data=False, **overrides)

            def client(c, lo):
                f = yield from fs.open(c, "/out")
                # Strided 4 KiB regions, interleaved across clients.
                for i in range(64):
                    yield from fs.write(c, f, lo + i * 16 * KIB, 4 * KIB)
                yield from fs.sync(c, f)

            procs = [
                env.process(client(c, c * 4 * KIB)) for c in range(4)
            ]
            env.run(env.all_of(procs))
            return sum(s.stats.seeks for s in fs.servers), env.now

        stack_seeks, stack_t = run_variant()
        seed_seeks, seed_t = run_variant(disk_sched="fifo", server_cache_B=0)
        assert stack_seeks < seed_seeks
        assert stack_t < seed_t
