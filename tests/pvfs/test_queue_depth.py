"""IOServer.queue_depth(): the live load gauge the selector samples."""

from repro.pvfs import DiskModel, IOServer
from repro.sim import Environment

KIB = 1024


def make_server(env, **kwargs):
    return IOServer(env, 0, DiskModel(), **kwargs)


def writer(server, offset, nbytes=64 * KIB):
    yield from server.service_write([(offset, nbytes)])


class TestQueueDepth:
    def test_idle_server_reports_zero(self):
        env = Environment()
        assert make_server(env, sched="elevator").queue_depth() == 0
        assert make_server(env, sched="fifo").queue_depth() == 0

    def test_elevator_counts_waiting_plus_in_service(self):
        env = Environment()
        server = make_server(env, sched="elevator")
        for i in range(3):
            env.process(writer(server, i * 128 * KIB))
        env.run(until=1e-9)  # let all three reach the disk queue
        assert server.queue_depth() == server.disk_queue.depth == 3

    def test_fifo_without_cache_falls_back_to_resource_queue(self):
        env = Environment()
        server = make_server(env, sched="fifo")
        assert server.disk_queue is None
        for i in range(3):
            env.process(writer(server, i * 128 * KIB))
        env.run(until=1e-9)
        # One request holds the Resource slot; the rest wait in its queue.
        assert server.queue_depth() == len(server.disk_res.queue) == 2

    def test_depth_drains_back_to_zero(self):
        env = Environment()
        server = make_server(env, sched="elevator")
        procs = [env.process(writer(server, i * 128 * KIB)) for i in range(3)]
        env.run(env.all_of(procs))
        assert server.queue_depth() == 0
