"""Property tests: sequential read-ahead vs the write-back cache.

Random interleavings of reads, writes, syncs, flushes, and daemon crashes
must never let the prefetch store answer with stale bytes.  In the model
that is a structural guarantee with two halves:

* the clean prefetched runs (``_ra_runs``) never overlap the cache's
  dirty runs — a write invalidates any prefetched extent it touches
  before it can shadow the fresh data;
* ``fail()`` drops the prefetch store with the daemon's memory, so a
  post-restore read cannot hit extents prefetched before the crash.

Plus the conservation identity that pins the accounting:
``sum(_ra_runs) == readahead_bytes - readahead_wasted`` at every step.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpi.network import NetworkConfig
from repro.pvfs import DiskModel, FileSystem, IOServer, PVFSConfig
from repro.sim import Environment

KIB, MIB = 1024, 1024 * 1024

# One op per step: writes pick a slot index (mapped to a fresh extent),
# reads pick any offset window, the rest are parameterless.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 63), st.integers(1, 4 * KIB)),
        st.tuples(st.just("read"), st.integers(0, 64 * 8 * KIB), st.integers(1, 16 * KIB)),
        st.tuples(st.just("sync"), st.just(0), st.just(0)),
        st.tuples(st.just("flush"), st.just(0), st.just(0)),
        st.tuples(st.just("crash"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


def make_server(env, readahead_B=8 * KIB, cache_B=1 * MIB):
    return IOServer(
        env,
        0,
        DiskModel(),
        sched="elevator",
        cache_B=cache_B,
        cache_watermark=0.75,
        cache_idle_flush_s=0.02,
        readahead_B=readahead_B,
    )


def overlap(runs_a, runs_b):
    return any(
        lo_a < hi_b and lo_b < hi_a
        for lo_a, hi_a in runs_a
        for lo_b, hi_b in runs_b
    )


def check_structure(server):
    runs = server._ra_runs
    # Runs are disjoint and sorted (each is a half-open [lo, hi) extent).
    for (lo_a, hi_a), (lo_b, hi_b) in zip(runs, runs[1:]):
        assert hi_a <= lo_b, runs
    assert all(lo < hi for lo, hi in runs), runs
    # Never shadow dirty data.
    if server.cache is not None:
        assert not overlap(runs, server.cache.dirty_runs), (
            runs,
            server.cache.dirty_runs,
        )
    # Conservation: live prefetched bytes = prefetched - wasted.
    live = sum(hi - lo for lo, hi in runs)
    assert live == server.stats.readahead_bytes - server.stats.readahead_wasted


@given(sequence=ops)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_interleavings_keep_prefetch_and_dirty_disjoint(sequence):
    env = Environment()
    server = make_server(env)

    def step(kind, a, b):
        if kind == "write":
            yield from server.service_write([(a * 8 * KIB, b)])
        elif kind == "read":
            yield from server.service_write([(a, b)], is_read=True)
        elif kind == "sync":
            if server.cache is not None:
                yield from server.cache.flush()
        elif kind == "flush":
            if server.cache is not None:
                yield from server.cache.flush()
        else:  # crash, then immediate restart
            server.fail()
            assert server._ra_runs == []
            assert server._ra_next == 0
            server.restore()
        return None

    for kind, a, b in sequence:
        env.run(env.process(step(kind, a, b)))
        check_structure(server)


@given(
    prefix=st.lists(st.integers(0, 32 * KIB), min_size=1, max_size=6),
    crash_at=st.integers(0, 5),
)
@settings(max_examples=25, deadline=None)
def test_crash_never_resurrects_prefetched_extents(prefix, crash_at):
    """Reads after fail()+restore() must miss everything prefetched
    before the crash: the hit counter may only grow from *new* prefetch
    issued after the restart."""
    env = Environment()
    server = make_server(env, readahead_B=16 * KIB)

    def read(offset, length=1 * KIB):
        yield from server.service_write([(offset, length)], is_read=True)

    for i, offset in enumerate(prefix):
        env.run(env.process(read(offset)))
        if i == min(crash_at, len(prefix) - 1):
            dropped_runs = list(server._ra_runs)
            server.fail()
            assert server._ra_runs == []
            assert server._ra_next == 0
            server.restore()
            hits_before = server.stats.readahead_hits
            # Re-read exactly the extents that were prefetched pre-crash:
            # every one must go to disk, not the (gone) prefetch store.
            for lo, hi in dropped_runs:
                env.run(env.process(read(lo, hi - lo)))
            assert server.stats.readahead_hits == hits_before
            check_structure(server)
    check_structure(server)


def test_sequential_stream_prefetches_and_hits():
    """Sanity anchor for the properties above: a strictly sequential
    reader actually exercises the prefetch path (prefetches bytes, then
    serves later windows from memory)."""
    env = Environment()
    server = make_server(env, readahead_B=8 * KIB)

    def read(offset, length):
        yield from server.service_write([(offset, length)], is_read=True)

    for i in range(8):
        env.run(env.process(read(i * 1 * KIB, 1 * KIB)))
    assert server.stats.readahead_bytes > 0
    assert server.stats.readahead_hits > 0
    check_structure(server)


def test_write_into_prefetched_run_invalidates_it():
    env = Environment()
    server = make_server(env, readahead_B=8 * KIB)

    def op(regions, is_read):
        yield from server.service_write(regions, is_read=is_read)

    env.run(env.process(op([(0, 2 * KIB)], True)))
    env.run(env.process(op([(1 * KIB, 2 * KIB)], True)))  # sequential: prefetch
    assert server._ra_runs
    lo, hi = server._ra_runs[0]
    env.run(env.process(op([(lo, 512)], False)))  # dirty the prefetched run
    check_structure(server)
    assert not overlap(server._ra_runs, [(lo, lo + 512)])
