"""Disk-queue scheduling: policy ordering, C-SCAN sweep, starvation bound."""

import random

import pytest

from repro.pvfs.sched import (
    SCHEDULERS,
    DiskQueue,
    ElevatorPolicy,
    FifoPolicy,
    QueuedRequest,
    make_policy,
)
from repro.sim import Environment, Event, SimulationError


def waiters(env, offsets):
    return [
        QueuedRequest(offset=o, order=i, event=Event(env))
        for i, o in enumerate(offsets)
    ]


class TestPolicies:
    def test_make_policy(self):
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("elevator"), ElevatorPolicy)
        with pytest.raises(ValueError):
            make_policy("deadline")
        assert set(SCHEDULERS) == {"fifo", "elevator"}

    def test_elevator_aging_validated(self):
        with pytest.raises(ValueError):
            ElevatorPolicy(aging_limit=0)

    def test_fifo_is_arrival_order(self):
        env = Environment()
        w = waiters(env, [500, 100, 300])
        assert FifoPolicy().select(w, head=200) == 0

    def test_elevator_picks_lowest_offset_ahead_of_head(self):
        env = Environment()
        w = waiters(env, [500, 100, 300])
        assert ElevatorPolicy().select(w, head=200) == 2  # 300 >= 200

    def test_elevator_wraps_when_sweep_exhausts(self):
        env = Environment()
        w = waiters(env, [50, 20, 80])
        # Head past everything: circular scan restarts at the lowest offset.
        assert ElevatorPolicy().select(w, head=1000) == 1

    def test_elevator_overdue_beats_offset(self):
        env = Environment()
        w = waiters(env, [500, 100])
        w[0].passes = 3
        policy = ElevatorPolicy(aging_limit=3)
        # 100 is nearer the head, but waiter 0 aged out: arrival order wins.
        assert policy.select(w, head=0) == 0


class TestDiskQueue:
    def serve(self, policy_name, offsets, head_each=None, aging=8):
        """Drive concurrent acquires through a queue; return service order."""
        env = Environment()
        queue = DiskQueue(env, make_policy(policy_name, aging_limit=aging))
        order = []

        def one(offset):
            yield queue.acquire(offset)
            try:
                order.append(offset)
                yield env.timeout(1.0)
            finally:
                queue.release(offset if head_each is None else head_each)

        for offset in offsets:
            env.process(one(offset))
        env.run()
        assert not queue.busy and not queue.waiting
        return order

    def test_fifo_services_in_arrival_order(self):
        assert self.serve("fifo", [50, 40, 30, 20, 10]) == [50, 40, 30, 20, 10]

    def test_elevator_sweeps_by_offset(self):
        # First arrival is serviced immediately (queue idle); the rest are
        # queued and swept upward from the released head (50).
        assert self.serve("elevator", [50, 40, 30, 70, 60]) == [50, 60, 70, 30, 40]

    def test_depth_counts_in_service_and_waiting(self):
        env = Environment()
        queue = DiskQueue(env, make_policy("fifo"))

        def holder():
            yield queue.acquire(0)
            yield env.timeout(1.0)
            queue.release(0)

        def waiter():
            yield env.timeout(0.1)
            assert queue.depth == 1
            yield queue.acquire(10)
            queue.release(10)

        env.process(holder())
        env.process(waiter())
        env.run()
        assert queue.depth == 0
        assert queue.max_waiting == 1

    def test_release_without_acquire_raises(self):
        env = Environment()
        queue = DiskQueue(env, make_policy("fifo"))
        with pytest.raises(SimulationError):
            queue.release(0)


class TestStarvationBound:
    """The elevator's aging promise, checked against random request streams.

    A request passed over ``aging_limit`` times becomes overdue and
    overdue requests are granted in arrival order — so at grant time a
    request's pass count never exceeds ``aging_limit + e`` where ``e`` is
    the number of earlier arrivals waiting alongside it when it aged out.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("aging", [1, 3, 8])
    def test_pass_count_is_bounded(self, seed, aging):
        rng = random.Random(seed)
        env = Environment()
        policy = ElevatorPolicy(aging_limit=aging)
        waiting = []
        backlog_at_overdue = {}  # order -> earlier arrivals when aged out
        order = 0
        head = 0
        worst = 0
        for step in range(600):
            # Arrivals in bursts, offsets clustered to tempt the sweep
            # into favouring one neighbourhood forever.
            for _ in range(rng.randrange(0, 3)):
                offset = rng.choice([rng.randrange(100), rng.randrange(10)])
                waiting.append(
                    QueuedRequest(offset=offset, order=order, event=Event(env))
                )
                order += 1
            if not waiting:
                continue
            index = policy.select(waiting, head)
            chosen = waiting.pop(index)
            for w in waiting:
                w.passes += 1
                if w.passes == aging:
                    backlog_at_overdue[w.order] = sum(
                        1 for x in waiting if x.order < w.order
                    )
            bound = aging + backlog_at_overdue.get(chosen.order, 0)
            assert chosen.passes <= bound or chosen.passes < aging, (
                f"step {step}: request {chosen.order} passed over "
                f"{chosen.passes} times (bound {bound})"
            )
            worst = max(worst, chosen.passes)
            head = chosen.offset
        # The scenario actually exercises aging (not vacuous).
        assert worst >= aging
