"""Unit tests for the per-query strategy selector (hybrid-auto)."""

import pytest

from repro.adapt import (
    CANDIDATES,
    PolicyWeights,
    QuerySignals,
    ScoredPolicy,
    StrategyPolicy,
    StrategySelector,
)
from repro.obs import NULL_METRICS, MetricsRegistry


class FakeCounts:
    def __init__(self, total):
        self.total = total

    def sum(self):
        return self.total


class FakeResults:
    """Stands in for ResultGenerator: content id -> total hit count."""

    def __init__(self, counts):
        self.counts = counts
        self.asked = []

    def fragment_counts(self, content):
        self.asked.append(content)
        return FakeCounts(self.counts[content])


class FakeServer:
    def __init__(self, depth):
        self._depth = depth

    def queue_depth(self):
        return self._depth


class FakeEnv:
    def __init__(self, metrics=NULL_METRICS):
        self.metrics = metrics


class FakeFs:
    def __init__(self, depths=(0,), metrics=NULL_METRICS):
        self.servers = [FakeServer(d) for d in depths]
        self.env = FakeEnv(metrics)


def signals(**kwargs):
    defaults = dict(
        query_id=0,
        result_bytes=8 * 1024,
        result_count=1,
        queue_depth=0.0,
        outstanding_faults=0,
        nworkers=4,
    )
    defaults.update(kwargs)
    return QuerySignals(**defaults)


class TestScoredPolicy:
    def test_tiny_query_prefers_mw(self):
        p = ScoredPolicy()
        s = signals(result_bytes=8 * 1024, result_count=1)
        assert p.score("mw", s) > max(p.score("ww-posix", s), p.score("ww-list", s))

    def test_large_query_prefers_ww_list(self):
        p = ScoredPolicy()
        s = signals(result_bytes=8 * 1024 * 1024, result_count=1000)
        assert p.score("ww-list", s) > max(p.score("mw", s), p.score("ww-posix", s))

    def test_outstanding_faults_kill_mw(self):
        p = ScoredPolicy()
        healthy = signals()
        faulted = signals(outstanding_faults=2)
        assert p.score("mw", faulted) < p.score("mw", healthy)
        assert p.score("mw", faulted) < p.score("ww-list", faulted)

    def test_queue_depth_penalizes_posix_twice_as_hard(self):
        p = ScoredPolicy()
        idle = signals(queue_depth=0.0)
        busy = signals(queue_depth=10.0)
        mw_drop = p.score("mw", idle) - p.score("mw", busy)
        posix_drop = p.score("ww-posix", idle) - p.score("ww-posix", busy)
        assert posix_drop == pytest.approx(2.0 * mw_drop)

    def test_unknown_strategy_scores_neg_inf(self):
        assert ScoredPolicy().score("ww-coll", signals()) == float("-inf")

    def test_weights_are_tunable(self):
        heavy_mw = ScoredPolicy(weights=PolicyWeights(mw_bias=100.0))
        s = signals(result_bytes=8 * 1024 * 1024, result_count=1000)
        assert heavy_mw.score("mw", s) > heavy_mw.score("ww-list", s)


class TestSelector:
    def test_choice_is_sticky(self):
        sel = StrategySelector(FakeResults({0: 1}), FakeFs(), nworkers=4)
        first = sel.choose(0)
        # Signals changed radically; the recorded choice must not.
        sel.fs.servers[0]._depth = 1000
        assert sel.choose(0, outstanding_faults=5) == first
        assert sel.choices == {0: first}

    def test_small_and_large_queries_pick_differently(self):
        sel = StrategySelector(
            FakeResults({0: 1, 1: 2000}), FakeFs(), nworkers=4
        )
        assert sel.choose(0) == "mw"
        assert sel.choose(1) == "ww-list"

    def test_content_id_overrides_slot_id(self):
        """Sharded serve mode: the slot id differs from the workload
        content id; the estimate must follow the content."""
        sel = StrategySelector(
            FakeResults({7: 1, 0: 2000}), FakeFs(), nworkers=4
        )
        assert sel.choose(0, content=7) == "mw"
        assert sel.results.asked == [7]

    def test_queue_depth_is_mean_over_servers(self):
        sel = StrategySelector(
            FakeResults({0: 1}), FakeFs(depths=(2, 4, 6)), nworkers=4
        )
        assert sel.signals_for(0).queue_depth == pytest.approx(4.0)

    def test_no_servers_means_zero_depth(self):
        sel = StrategySelector(FakeResults({0: 1}), FakeFs(depths=()), nworkers=4)
        assert sel.signals_for(0).queue_depth == 0.0

    def test_choice_metric_incremented(self):
        reg = MetricsRegistry()
        sel = StrategySelector(
            FakeResults({0: 1}),
            FakeFs(metrics=reg),
            nworkers=4,
        )
        chosen = sel.choose(0)
        snap = reg.snapshot()
        assert snap.counter_total("adapt.choices", chosen=chosen) == 1.0
        sel.choose(0)  # sticky: no second increment
        assert reg.snapshot().counter_total("adapt.choices") == 1.0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            StrategySelector(FakeResults({}), FakeFs(), nworkers=4, candidates=())

    def test_ww_coll_is_not_a_candidate(self):
        assert "ww-coll" not in CANDIDATES

    def test_pluggable_policy_wins(self):
        class AlwaysPosix(StrategyPolicy):
            def score(self, name, s):
                return 1.0 if name == "ww-posix" else 0.0

        sel = StrategySelector(
            FakeResults({0: 1}), FakeFs(), nworkers=4, policy=AlwaysPosix()
        )
        assert sel.choose(0) == "ww-posix"

    def test_tie_breaks_toward_earlier_candidate(self):
        class Flat(StrategyPolicy):
            def score(self, name, s):
                return 0.0

        sel = StrategySelector(
            FakeResults({0: 1}), FakeFs(), nworkers=4, policy=Flat()
        )
        assert sel.choose(0) == CANDIDATES[0]

    def test_deterministic_across_instances(self):
        counts = {i: (i * 37) % 500 for i in range(20)}
        a = StrategySelector(FakeResults(dict(counts)), FakeFs(), nworkers=4)
        b = StrategySelector(FakeResults(dict(counts)), FakeFs(), nworkers=4)
        assert [a.choose(i) for i in range(20)] == [
            b.choose(i) for i in range(20)
        ]
