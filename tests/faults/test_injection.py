"""Unit tests of the fault mechanisms in the network and file system."""

import pytest

from repro.faults import MessageLoss, WorkerCrashFault
from repro.mpi.network import LinkFailure, LinkFaults, Network, NetworkConfig
from repro.pvfs import FileSystem
from repro.sim import Environment
from repro.sim.rng import RandomStreams


class _AlwaysDrop:
    def random(self) -> float:
        return 0.0


class _NeverDrop:
    def random(self) -> float:
        return 1.0


@pytest.fixture
def env():
    return Environment()


class TestLinkFaults:
    def test_requires_a_window(self):
        with pytest.raises(ValueError):
            LinkFaults([], _NeverDrop())

    def test_certain_loss_exhausts_retries(self, env):
        net = Network(env, 2, NetworkConfig())
        net.install_faults(
            LinkFaults(
                [MessageLoss(drop_prob=0.99, max_retries=3)], _AlwaysDrop()
            )
        )
        outcome = {}

        def sender(env):
            try:
                yield from net.transfer(0, 1, 4096)
            except LinkFailure:
                outcome["failed_at"] = env.now

        env.process(sender(env))
        env.run()
        assert "failed_at" in outcome
        assert net.faults.stats.drops == 4  # initial + 3 retransmissions
        assert net.faults.stats.retransmits == 3
        assert net.faults.stats.link_failures == 1

    def test_drops_outside_window_never_happen(self, env):
        net = Network(env, 2, NetworkConfig())
        net.install_faults(
            LinkFaults(
                [MessageLoss(drop_prob=0.99, start=100.0, end=200.0)],
                _AlwaysDrop(),
            )
        )
        done = {}

        def sender(env):
            yield from net.transfer(0, 1, 4096)
            done["at"] = env.now

        env.process(sender(env))
        env.run()
        assert "at" in done
        assert net.faults.stats.drops == 0

    def test_seeded_drops_are_recovered(self, env):
        net = Network(env, 2, NetworkConfig())
        rng = RandomStreams(1234).stream("link-faults")
        net.install_faults(
            LinkFaults([MessageLoss(drop_prob=0.5, max_retries=50)], rng)
        )
        delivered = []

        def sender(env, i):
            yield env.timeout(i * 1e-3)
            yield from net.transfer(0, 1, 8192)
            delivered.append(i)

        for i in range(20):
            env.process(sender(env, i))
        env.run()
        stats = net.faults.stats
        assert sorted(delivered) == list(range(20))
        assert stats.drops > 0
        # Every drop was healed by exactly one retransmission.
        assert stats.retransmits == stats.drops
        assert stats.link_failures == 0

    def test_backoff_is_exponential(self):
        spec = MessageLoss(
            drop_prob=0.5, retransmit_timeout_s=1e-3, backoff=2.0
        )
        delays = [LinkFaults.retransmit_delay(spec, a) for a in (1, 2, 3)]
        assert delays == [1e-3, 2e-3, 4e-3]


class TestServerDegradation:
    @pytest.mark.parametrize(
        "factor", [0.0, -1.0, float("nan"), float("inf"), True]
    )
    def test_degrade_rejects_bad_factor(self, env, factor):
        fs = FileSystem(env)
        with pytest.raises(ValueError):
            fs.degrade_server(0, factor)

    def test_degraded_window_restores_exactly(self, env):
        fs = FileSystem(env)
        pristine = fs.servers[0].disk
        fs.set_degraded(0, 4.0)
        degraded = fs.servers[0].disk
        assert degraded.bandwidth_Bps == pytest.approx(pristine.bandwidth_Bps / 4)
        # Re-entering a window does not compound (unlike degrade_server).
        fs.set_degraded(0, 4.0)
        assert fs.servers[0].disk == degraded
        fs.clear_degraded(0)
        assert fs.servers[0].disk == pristine

    def test_degraded_server_slows_the_volume(self):
        def timed(slow: float) -> float:
            env = Environment()
            fs = FileSystem(env)
            if slow > 1:
                fs.set_degraded(0, slow)
            done = {}

            def client(env):
                f = yield from fs.open(0, "/out")
                yield from fs.write(0, f, 0, 4 << 20)
                done["at"] = env.now

            env.process(client(env))
            env.run()
            return done["at"]

        # The straggler must be severe enough to outlast the client-side
        # network serialization it otherwise hides behind.
        assert timed(1000.0) > timed(1.0)


class TestServerOutageRetry:
    def test_write_blocks_and_retries_until_restore(self, env):
        fs = FileSystem(env)
        fs.fail_server(0)
        done = {}

        def client(env):
            f = yield from fs.open(0, "/out")
            yield from fs.write(0, f, 0, 1 << 20)
            done["at"] = env.now

        def healer(env):
            yield env.timeout(1.0)
            fs.restore_server(0)

        env.process(client(env))
        env.process(healer(env))
        env.run()
        assert done["at"] >= 1.0
        assert fs.fault_stats["retries"] > 0
        assert fs.fault_stats["retry_wait_s"] > 0

    def test_healthy_run_counts_no_retries(self, env):
        fs = FileSystem(env)
        done = {}

        def client(env):
            f = yield from fs.open(0, "/out")
            yield from fs.write(0, f, 0, 1 << 20)
            done["ok"] = True

        env.process(client(env))
        env.run()
        assert done["ok"]
        assert fs.fault_stats["retries"] == 0


class TestCrashFault:
    def test_repr_names_rank_and_downtime(self):
        fault = WorkerCrashFault(rank=3, downtime_s=2.5)
        text = repr(fault)
        assert "3" in text and "2.5" in text
