"""Unit tests for the declarative fault plan (validation + JSON I/O)."""

import io
import math

import pytest

from repro.faults import (
    FaultPlan,
    FaultToleranceConfig,
    MessageLoss,
    ServerKill,
    ServerOutage,
    ServerSlowdown,
    WorkerCrash,
    load_fault_plan,
)


class TestSpecValidation:
    def test_crash_rank_zero_rejected(self):
        with pytest.raises(ValueError, match="rank 0 is the master"):
            WorkerCrash(rank=0, at_time=1.0)

    def test_crash_negative_time_rejected(self):
        with pytest.raises(ValueError):
            WorkerCrash(rank=1, at_time=-1.0)

    def test_crash_zero_downtime_rejected(self):
        with pytest.raises(ValueError):
            WorkerCrash(rank=1, at_time=1.0, downtime_s=0.0)

    def test_outage_negative_server_rejected(self):
        with pytest.raises(ValueError):
            ServerOutage(server_id=-1, start=0.0, duration=1.0)

    def test_outage_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            ServerOutage(server_id=0, start=0.0, duration=0.0)

    @pytest.mark.parametrize(
        "factor", [0.0, -2.0, float("nan"), float("inf")]
    )
    def test_slowdown_bad_factor_rejected(self, factor):
        with pytest.raises(ValueError, match="factor"):
            ServerSlowdown(server_id=0, start=0.0, duration=1.0, factor=factor)

    @pytest.mark.parametrize("prob", [-0.1, 1.0, 1.5])
    def test_loss_bad_probability_rejected(self, prob):
        with pytest.raises(ValueError, match="drop_prob"):
            MessageLoss(drop_prob=prob)

    def test_loss_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="end"):
            MessageLoss(drop_prob=0.1, start=5.0, end=1.0)

    def test_loss_backoff_below_one_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            MessageLoss(drop_prob=0.1, backoff=0.5)

    def test_loss_zero_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            MessageLoss(drop_prob=0.1, max_retries=0)


class TestToleranceConfig:
    def test_defaults_valid(self):
        ftc = FaultToleranceConfig()
        assert ftc.detection_timeout_s > ftc.heartbeat_interval_s

    def test_timeout_must_exceed_heartbeat(self):
        with pytest.raises(ValueError, match="detection_timeout_s"):
            FaultToleranceConfig(
                heartbeat_interval_s=1.0, detection_timeout_s=0.5
            )

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            FaultToleranceConfig(heartbeat_interval_s=0.0)


class TestPlanProperties:
    def test_none_is_empty(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert not plan.needs_tolerance

    def test_standard_has_crash_and_slowdown(self):
        plan = FaultPlan.standard()
        assert not plan.empty
        assert plan.needs_tolerance
        assert len(plan.worker_crashes) == 1
        assert len(plan.server_slowdowns) == 1

    def test_server_faults_alone_need_no_tolerance(self):
        plan = FaultPlan(
            server_outages=(ServerOutage(server_id=0, start=1.0, duration=2.0),)
        )
        assert not plan.empty
        assert not plan.needs_tolerance


class TestJson:
    def test_round_trip_standard(self):
        plan = FaultPlan.standard(crash_rank=3, crash_time=4.5)
        buf = io.StringIO()
        plan.to_json(buf)
        buf.seek(0)
        assert FaultPlan.from_json(buf) == plan

    def test_round_trip_infinite_loss_window(self):
        plan = FaultPlan(message_loss=(MessageLoss(drop_prob=0.25),))
        buf = io.StringIO()
        plan.to_json(buf)
        text = buf.getvalue()
        # Strict JSON: no Infinity literal on the wire.
        assert "Infinity" not in text
        restored = FaultPlan.from_json(io.StringIO(text))
        assert restored == plan
        assert math.isinf(restored.message_loss[0].end)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"master_crashes": []})

    def test_invalid_spec_inside_json_rejected(self):
        doc = '{"worker_crashes": [{"rank": 0, "at_time": 1.0}]}'
        with pytest.raises(ValueError, match="rank 0 is the master"):
            FaultPlan.from_json(io.StringIO(doc))

    def test_load_from_file(self, tmp_path):
        plan = FaultPlan.standard()
        path = tmp_path / "plan.json"
        with open(path, "w") as fh:
            plan.to_json(fh)
        assert load_fault_plan(str(path)) == plan


class TestServerKill:
    def test_negative_server_rejected(self):
        with pytest.raises(ValueError, match="server_id"):
            ServerKill(server_id=-1, at_time=1.0)

    def test_non_finite_time_rejected(self):
        with pytest.raises(ValueError):
            ServerKill(server_id=0, at_time=float("nan"))

    def test_plan_with_kills_is_not_empty(self):
        plan = FaultPlan(server_kills=(ServerKill(server_id=0, at_time=5.0),))
        assert not plan.empty
        assert not plan.needs_tolerance  # server faults need no MPI tolerance

    def test_json_round_trip(self):
        plan = FaultPlan(
            server_kills=(
                ServerKill(server_id=2, at_time=8.5),
                ServerKill(server_id=0, at_time=12.0),
            ),
            server_outages=(ServerOutage(server_id=1, start=3.0, duration=2.0),),
        )
        buf = io.StringIO()
        plan.to_json(buf)
        text = buf.getvalue()
        assert "server_kills" in text
        assert FaultPlan.from_json(io.StringIO(text)) == plan

    def test_invalid_kill_inside_json_rejected(self):
        doc = '{"server_kills": [{"server_id": -3, "at_time": 1.0}]}'
        with pytest.raises(ValueError, match="server_id"):
            FaultPlan.from_json(io.StringIO(doc))


class TestKillConfigValidation:
    """SimulationConfig refuses unsurvivable kill plans up front."""

    def _config(self, kills, **pvfs_kwargs):
        from repro.core import SimulationConfig
        from repro.pvfs import PVFSConfig

        return SimulationConfig(
            nprocs=4,
            nqueries=2,
            nfragments=4,
            fault_plan=FaultPlan(server_kills=tuple(kills)),
            pvfs=PVFSConfig(**pvfs_kwargs),
        )

    def test_kill_on_unreplicated_volume_rejected(self):
        with pytest.raises(ValueError, match="replicas=1"):
            self._config([ServerKill(server_id=0, at_time=1.0)])

    def test_kill_with_replication_accepted(self):
        cfg = self._config([ServerKill(server_id=0, at_time=1.0)], replicas=2)
        assert cfg.fault_plan.server_kills[0].server_id == 0

    def test_killing_a_whole_chain_rejected(self):
        # replicas=2, nservers=8 (default): chain of primary 3 is {3, 4}.
        with pytest.raises(ValueError, match="every replica"):
            self._config(
                [
                    ServerKill(server_id=3, at_time=1.0),
                    ServerKill(server_id=4, at_time=2.0),
                ],
                replicas=2,
            )

    def test_out_of_range_kill_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            self._config([ServerKill(server_id=99, at_time=1.0)], replicas=2)
