"""Result generation: determinism, counts, sizes, ordering, payloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import RandomStreams
from repro.workload import (
    NT_HISTOGRAM,
    NT_QUERY_HISTOGRAM,
    FragmentedDatabase,
    QuerySet,
    ResultGenerator,
    ResultModel,
    result_payload,
)

GIB = 1024**3


def make_generator(seed=2006, nqueries=5, nfragments=16, **model_kwargs):
    streams = RandomStreams(seed)
    queries = QuerySet.generate(NT_QUERY_HISTOGRAM, nqueries, streams)
    database = FragmentedDatabase(NT_HISTOGRAM, nfragments, 4 * GIB, streams)
    return ResultGenerator(
        queries, database, ResultModel(**model_kwargs), streams
    )


class TestResultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResultModel(min_count=-1)
        with pytest.raises(ValueError):
            ResultModel(min_count=10, max_count=5)
        with pytest.raises(ValueError):
            ResultModel(min_result_size=0)
        with pytest.raises(ValueError):
            ResultModel(max_match_B=0)


class TestCounts:
    def test_query_count_in_declared_range(self):
        gen = make_generator(min_count=100, max_count=200)
        for q in range(5):
            assert 100 <= gen.query_result_count(q) <= 200

    def test_fragment_counts_sum_to_query_count(self):
        gen = make_generator()
        for q in range(5):
            assert gen.fragment_counts(q).sum() == gen.query_result_count(q)

    def test_counts_data_dependent(self):
        """Result count varies per query (the paper: 'completely data
        dependent')."""
        gen = make_generator(nqueries=5)
        counts = {gen.query_result_count(q) for q in range(5)}
        assert len(counts) > 1


class TestBatches:
    def test_batch_sorted_by_score_desc(self):
        gen = make_generator()
        batch = gen.batch(0, 0)
        assert batch.is_sorted()

    def test_batch_sizes_bounded(self):
        gen = make_generator(min_result_size=512, max_match_B=10_000)
        qlen = min(gen.queries[1].nbytes, 10_000)
        batch = gen.batch(1, 3)
        if batch.count:
            assert batch.sizes.min() >= 512
            assert batch.sizes.max() <= 3 * max(qlen, 10_000)

    def test_batch_deterministic(self):
        a = make_generator().batch(2, 7)
        b = make_generator().batch(2, 7)
        np.testing.assert_array_equal(a.sizes, b.sizes)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_batches_independent_of_generation_order(self):
        gen1 = make_generator()
        _ = gen1.batch(4, 9)  # touch a different batch first
        a = gen1.batch(2, 7)
        b = make_generator().batch(2, 7)
        np.testing.assert_array_equal(a.sizes, b.sizes)

    def test_different_seeds_differ(self):
        a = make_generator(seed=1).batch(0, 0)
        b = make_generator(seed=2).batch(0, 0)
        assert a.count != b.count or not np.array_equal(a.sizes, b.sizes)

    def test_mismatched_arrays_rejected(self):
        from repro.workload import ResultBatch

        with pytest.raises(ValueError):
            ResultBatch(0, 0, np.zeros(3, dtype=np.int64), np.zeros(2))

    def test_total_bytes(self):
        gen = make_generator()
        batch = gen.batch(0, 0)
        assert batch.total_bytes == int(batch.sizes.sum())


class TestAggregates:
    def test_query_total_is_sum_of_batches(self):
        gen = make_generator(nfragments=8)
        expected = sum(gen.batch(0, f).total_bytes for f in range(8))
        assert gen.query_total_bytes(0) == expected

    def test_paper_scale_output_volume(self):
        """Paper setup: ~208 MB of output per run (we accept 100-400 MB)."""
        streams = RandomStreams(2006)
        queries = QuerySet.generate(NT_QUERY_HISTOGRAM, 20, streams)
        database = FragmentedDatabase(NT_HISTOGRAM, 128, 4 * GIB, streams)
        gen = ResultGenerator(queries, database, ResultModel(), streams)
        total = gen.run_total_bytes()
        assert 100e6 < total < 400e6


class TestPayload:
    def test_deterministic_and_sized(self):
        a = result_payload(1, 2, 3, 100)
        b = result_payload(1, 2, 3, 100)
        assert a == b
        assert len(a) == 100

    def test_identity_sensitivity(self):
        base = result_payload(1, 2, 3, 64)
        assert result_payload(9, 2, 3, 64) != base
        assert result_payload(1, 9, 3, 64) != base
        assert result_payload(1, 2, 9, 64) != base

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            result_payload(0, 0, 0, -1)

    @given(size=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_property_payload_length(self, size):
        assert len(result_payload(0, 1, 2, size)) == size


class TestDatabase:
    def test_fragments_partition_volume(self):
        db = FragmentedDatabase(NT_HISTOGRAM, 7, 1000, RandomStreams(0))
        frags = db.fragments
        assert len(frags) == 7
        assert sum(f.nbytes for f in frags) == 1000

    def test_fragment_bounds(self):
        db = FragmentedDatabase(NT_HISTOGRAM, 4, 1000, RandomStreams(0))
        with pytest.raises(ValueError):
            db.fragment(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            FragmentedDatabase(NT_HISTOGRAM, 0, 1000, RandomStreams(0))
        with pytest.raises(ValueError):
            FragmentedDatabase(NT_HISTOGRAM, 4, 0, RandomStreams(0))

    def test_sample_lengths_deterministic(self):
        db1 = FragmentedDatabase(NT_HISTOGRAM, 4, 1000, RandomStreams(5))
        db2 = FragmentedDatabase(NT_HISTOGRAM, 4, 1000, RandomStreams(5))
        np.testing.assert_array_equal(
            db1.sample_sequence_lengths(1, 2, 10),
            db2.sample_sequence_lengths(1, 2, 10),
        )


class TestQuerySet:
    def test_generation(self):
        qs = QuerySet.generate(NT_QUERY_HISTOGRAM, 20, RandomStreams(0))
        assert len(qs) == 20
        assert qs.total_bytes() == sum(q.nbytes for q in qs)
        assert qs[3].query_id == 3

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            QuerySet.generate(NT_QUERY_HISTOGRAM, 0, RandomStreams(0))
        from repro.workload import Query

        with pytest.raises(ValueError):
            QuerySet([Query(1, 10)])  # ids must start at 0
        with pytest.raises(ValueError):
            QuerySet([])
