"""Box histograms: validation, sampling, statistics, truncation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import RandomStreams
from repro.workload import NT_HISTOGRAM, NT_QUERY_HISTOGRAM, BoxHistogram
from repro.workload.nt import (
    NT_MAX_SEQUENCE_B,
    NT_MEAN_SEQUENCE_B,
    NT_MIN_SEQUENCE_B,
)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxHistogram(())

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoxHistogram(((10, 5, 1.0),))
        with pytest.raises(ValueError):
            BoxHistogram(((-1, 5, 1.0),))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            BoxHistogram(((0, 5, -1.0),))

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            BoxHistogram(((0, 5, 0.0),))

    def test_single_and_constant(self):
        h = BoxHistogram.single(10, 20)
        assert h.min_size == 10 and h.max_size == 20
        c = BoxHistogram.constant(7)
        rng = np.random.default_rng(0)
        assert set(c.sample(rng, 50).tolist()) == {7}


class TestSampling:
    def test_samples_within_bounds(self):
        h = BoxHistogram.from_boxes([(10, 20, 1.0), (100, 200, 1.0)])
        rng = np.random.default_rng(1)
        samples = h.sample(rng, 5000)
        assert samples.min() >= 10
        assert samples.max() <= 200
        assert not np.any((samples > 20) & (samples < 100))

    def test_weights_respected(self):
        h = BoxHistogram.from_boxes([(0, 9, 0.9), (100, 109, 0.1)])
        rng = np.random.default_rng(2)
        samples = h.sample(rng, 20_000)
        small_frac = np.mean(samples < 50)
        assert 0.88 < small_frac < 0.92

    def test_count_zero(self):
        h = BoxHistogram.single(1, 2)
        assert len(h.sample(np.random.default_rng(0), 0)) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BoxHistogram.single(1, 2).sample(np.random.default_rng(0), -1)

    def test_mean_close_to_empirical(self):
        rng = np.random.default_rng(3)
        samples = NT_HISTOGRAM.sample(rng, 300_000)
        assert samples.mean() == pytest.approx(NT_HISTOGRAM.mean(), rel=0.15)


class TestTruncation:
    def test_boxes_clipped(self):
        h = BoxHistogram.from_boxes([(0, 10, 1.0), (20, 100, 1.0)])
        t = h.truncated(50)
        assert t.max_size == 50
        rng = np.random.default_rng(4)
        assert t.sample(rng, 2000).max() <= 50

    def test_whole_boxes_dropped(self):
        h = BoxHistogram.from_boxes([(0, 10, 1.0), (20, 100, 1.0)])
        t = h.truncated(15)
        assert t.max_size == 10

    def test_truncating_everything_rejected(self):
        h = BoxHistogram.from_boxes([(10, 20, 1.0)])
        with pytest.raises(ValueError):
            h.truncated(5)

    def test_zero_weight_boxes_dropped(self):
        """Regression: zero-weight boxes used to survive truncation, making
        the result's box list disagree with min_size/max_size (which only
        consider positive weight)."""
        h = BoxHistogram.from_boxes([(0, 10, 1.0), (20, 30, 0.0), (40, 50, 2.0)])
        t = h.truncated(45)
        assert all(w > 0 for _, _, w in t.boxes)
        assert t.min_size == min(l for l, _, _ in t.boxes) == 0
        assert t.max_size == max(h_ for _, h_, _ in t.boxes) == 45

    def test_only_zero_weight_survivors_raise_clearly(self):
        """Regression: when the cut kept only zero-weight boxes, the old
        code tripped the constructor's generic "at least one box needs
        positive weight" far from the cause; now the error names the cut
        and the smallest sampleable size."""
        h = BoxHistogram.from_boxes([(0, 10, 0.0), (20, 30, 1.0)])
        with pytest.raises(ValueError, match="max_size=15 truncates away"):
            h.truncated(15)

    def test_error_reports_smallest_sampleable_size(self):
        h = BoxHistogram.from_boxes([(0, 10, 0.0), (20, 30, 1.0)])
        with pytest.raises(ValueError, match="smallest sampleable size is 20"):
            h.truncated(5)

    def test_truncated_samples_stay_sampleable(self):
        h = BoxHistogram.from_boxes([(0, 10, 1.0), (20, 30, 0.0)])
        t = h.truncated(25)
        rng = np.random.default_rng(7)
        samples = t.sample(rng, 500)
        assert samples.min() >= 0 and samples.max() <= 10


class TestNTPreset:
    def test_paper_extremes(self):
        """Min 6 bytes, max slightly over 43 MB (paper Section 3.3)."""
        assert NT_HISTOGRAM.min_size == NT_MIN_SEQUENCE_B == 6
        assert NT_HISTOGRAM.max_size == NT_MAX_SEQUENCE_B >= 43 * 1024 * 1024

    def test_paper_mean(self):
        """Mean sequence length ~4401 bytes."""
        assert NT_HISTOGRAM.mean() == pytest.approx(NT_MEAN_SEQUENCE_B, rel=0.25)

    def test_query_histogram_truncated(self):
        assert NT_QUERY_HISTOGRAM.max_size <= 16 * 1024
        assert NT_QUERY_HISTOGRAM.min_size == 6

    def test_twenty_queries_are_tens_of_kib(self):
        """The paper's 20-query set totals 'roughly 86 KBytes'."""
        rng = RandomStreams(2006).stream("check")
        total = NT_QUERY_HISTOGRAM.sample(rng, 20).sum()
        assert 10 * 1024 < total < 200 * 1024


@given(
    boxes=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000), st.floats(0.01, 10)),
        min_size=1,
        max_size=6,
    ),
    seed=st.integers(0, 2**20),
)
@settings(max_examples=100, deadline=None)
def test_property_samples_in_declared_range(boxes, seed):
    normalized = [(min(l, h), max(l, h), w) for l, h, w in boxes]
    hist = BoxHistogram.from_boxes(normalized)
    rng = np.random.default_rng(seed)
    samples = hist.sample(rng, 100)
    assert samples.min() >= hist.min_size
    assert samples.max() <= hist.max_size
