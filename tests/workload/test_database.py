"""Fragment bookkeeping: even splits and dense-packing extents."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workload.histogram import BoxHistogram
from repro.workload.database import FragmentedDatabase


def make_db(nfragments=4, total_bytes=1003):
    return FragmentedDatabase(
        BoxHistogram.single(64, 256),
        nfragments=nfragments,
        total_bytes=total_bytes,
        streams=RandomStreams(7),
    )


class TestFragmentExtent:
    def test_extents_tile_the_database_densely(self):
        db = make_db(nfragments=4, total_bytes=1003)
        cursor = 0
        for i in range(db.nfragments):
            offset, nbytes = db.fragment_extent(i)
            assert offset == cursor
            assert nbytes == db.fragment(i).nbytes
            cursor += nbytes
        assert cursor == db.total_bytes

    def test_remainder_bytes_go_to_leading_fragments(self):
        db = make_db(nfragments=4, total_bytes=1003)
        sizes = [db.fragment_extent(i)[1] for i in range(4)]
        assert sizes == [251, 251, 251, 250]

    def test_out_of_range_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.fragment_extent(-1)
        with pytest.raises(ValueError):
            db.fragment_extent(db.nfragments)
