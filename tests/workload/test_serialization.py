"""Workload-description round trips (JSON save/load)."""

import io
import json

import pytest

from repro.core import SimulationConfig
from repro.workload import (
    BoxHistogram,
    ComputeModel,
    ResultModel,
    histogram_from_dict,
    histogram_to_dict,
    load_workload_kwargs,
    save_workload,
    workload_kwargs_from_dict,
    workload_to_dict,
)


class TestHistogramRoundTrip:
    def test_round_trip_preserves_boxes(self):
        histogram = BoxHistogram.from_boxes(
            [(6, 100, 0.5), (100, 4000, 0.5)]
        )
        doc = histogram_to_dict(histogram)
        back = histogram_from_dict(doc)
        assert back == histogram

    def test_document_is_json_safe(self):
        doc = histogram_to_dict(BoxHistogram.single(1, 10))
        json.dumps(doc)  # must not raise


class TestWorkloadRoundTrip:
    def make_config(self):
        return SimulationConfig(
            nprocs=8,
            nqueries=7,
            nfragments=11,
            seed=123,
            db_total_bytes=5 * 1024**2,
            query_histogram=BoxHistogram.single(10, 500),
            db_histogram=BoxHistogram.from_boxes([(6, 99, 1.0), (99, 999, 2.0)]),
            result_model=ResultModel(min_count=5, max_count=9, min_result_size=64,
                                     max_match_B=4096),
            compute=ComputeModel(startup_s=0.001, rate_s_per_byte=1e-7, speed=2.0),
        )

    def test_round_trip_preserves_workload(self):
        config = self.make_config()
        buffer = io.StringIO()
        save_workload(config, buffer)
        buffer.seek(0)
        kwargs = load_workload_kwargs(buffer)
        rebuilt = SimulationConfig(nprocs=8, **kwargs)
        assert rebuilt.nqueries == config.nqueries
        assert rebuilt.seed == config.seed
        assert rebuilt.query_histogram == config.query_histogram
        assert rebuilt.db_histogram == config.db_histogram
        assert rebuilt.result_model == config.result_model
        assert rebuilt.compute == config.compute

    def test_round_trip_generates_identical_workload(self):
        """The reproducibility contract: same document, same results."""
        config = self.make_config()
        doc = workload_to_dict(config)
        rebuilt = SimulationConfig(nprocs=8, **workload_kwargs_from_dict(doc))
        a = config.build_workload()
        b = rebuilt.build_workload()
        assert a.results.run_total_bytes() == b.results.run_total_bytes()
        batch_a = a.results.batch(0, 0)
        batch_b = b.results.batch(0, 0)
        assert batch_a.total_bytes == batch_b.total_bytes

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            workload_kwargs_from_dict({"format": "something-else"})
