"""Compute-time model: the paper's startup + linear-in-result-size law."""

import numpy as np
import pytest

from repro.workload import ComputeModel, MergeModel, ResultBatch


def batch_of(total_bytes, count=4):
    sizes = np.full(count, total_bytes // count, dtype=np.int64)
    sizes[0] += total_bytes - sizes.sum()
    scores = np.sort(np.random.default_rng(0).random(count))[::-1]
    return ResultBatch(0, 0, sizes, scores)


class TestComputeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeModel(startup_s=-1)
        with pytest.raises(ValueError):
            ComputeModel(speed=0)
        with pytest.raises(ValueError):
            ComputeModel().task_time(-1)

    def test_linear_in_result_bytes(self):
        model = ComputeModel(startup_s=0.01, rate_s_per_byte=1e-6, speed=1.0)
        t1 = model.task_time(1_000_000)
        t2 = model.task_time(2_000_000)
        assert t2 - t1 == pytest.approx(1.0)

    def test_startup_cost_floor(self):
        model = ComputeModel(startup_s=0.02, rate_s_per_byte=1e-6)
        assert model.task_time(0) == pytest.approx(0.02)

    def test_speed_scales_linear_term_only(self):
        """The default: startup does not shrink with compute speed, which
        is why the paper sees ~0.8 s of compute at speed 25.6 where a pure
        1/speed law would predict ~0.2 s."""
        model = ComputeModel(startup_s=0.01, rate_s_per_byte=1e-6)
        slow = model.with_speed(1.0).task_time(10_000_000)
        fast = model.with_speed(10.0).task_time(10_000_000)
        assert slow == pytest.approx(0.01 + 10.0)
        assert fast == pytest.approx(0.01 + 1.0)

    def test_startup_scales_option(self):
        model = ComputeModel(
            startup_s=0.01, rate_s_per_byte=0.0, startup_scales=True, speed=10.0
        )
        assert model.task_time(0) == pytest.approx(0.001)

    def test_batch_time_uses_total_bytes(self):
        model = ComputeModel(startup_s=0.0, rate_s_per_byte=1e-6)
        batch = batch_of(500_000)
        assert model.batch_time(batch) == pytest.approx(0.5)

    def test_paper_calibration_64_procs(self):
        """At 64 processes (2560 tasks / 63 workers) the paper reports a
        ~54 s mean worker compute phase at speed 0.1 and ~0.8 s at 25.6.
        Check the default calibration is the right order of magnitude."""
        model = ComputeModel()
        tasks_per_worker = 2560 / 63
        mean_task_bytes = 208e6 / 2560  # ~208 MB over 2560 tasks
        slow = model.with_speed(0.1).task_time(int(mean_task_bytes))
        fast = model.with_speed(25.6).task_time(int(mean_task_bytes))
        assert 25 < slow * tasks_per_worker < 90
        assert 0.3 < fast * tasks_per_worker < 2.0


class TestMergeModel:
    def test_costs_scale(self):
        merge = MergeModel(per_item_s=1e-6, per_byte_s=1e-9)
        assert merge.merge_time(1000, 0) == pytest.approx(1e-3)
        assert merge.merge_time(0, 1_000_000) == pytest.approx(1e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MergeModel().merge_time(-1, 0)

    def test_merge_is_cheap_next_to_compute(self):
        """Sanity: merging is a minor phase (as the paper's figures show)."""
        merge = MergeModel()
        compute = ComputeModel()
        nbytes = 100_000
        assert merge.merge_time(20, nbytes) < compute.task_time(nbytes) / 10
