"""Cluster presets."""

import pytest

from repro.cluster import PRESETS, feynman, bigger_filesystem, get_preset
from repro.core import SimulationConfig, run_simulation


class TestPresets:
    def test_feynman_matches_paper(self):
        preset = feynman()
        assert preset.pvfs.nservers == 16
        assert preset.pvfs.strip_size == 64 * 1024
        assert preset.procs_per_node == 2

    def test_get_preset(self):
        for name in PRESETS:
            preset = get_preset(name)
            assert preset.name.startswith(name.split("-")[0]) or preset.name == name
        with pytest.raises(ValueError):
            get_preset("nope")

    def test_bigger_filesystem(self):
        preset = bigger_filesystem(32)
        assert preset.pvfs.nservers == 32

    def test_with_helpers(self):
        preset = feynman().with_pvfs(nservers=8).with_network(latency_s=1e-3)
        assert preset.pvfs.nservers == 8
        assert preset.network.latency_s == 1e-3

    def test_presets_run(self):
        """Every preset can actually drive a simulation."""
        for name in PRESETS:
            preset = get_preset(name)
            cfg = SimulationConfig(
                nprocs=3, nqueries=1, nfragments=4,
                network=preset.network, pvfs=preset.pvfs,
            )
            assert run_simulation(cfg).file_stats.complete

    def test_modern_cluster_is_faster(self):
        base = dict(nprocs=6, nqueries=2, nfragments=8)
        slow = run_simulation(SimulationConfig(**base))
        modern = get_preset("modern")
        fast = run_simulation(
            SimulationConfig(**base, network=modern.network, pvfs=modern.pvfs)
        )
        assert fast.elapsed < slow.elapsed
