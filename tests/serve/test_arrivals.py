"""Arrival generators: seeded determinism and statistical sanity.

The generators are pure functions of (config, streams) — same seed, same
times, to the last bit — and their long-run mean rate must match the
configured offered load (the Lewis-Shedler thinning and the MMPP on-rate
compensation are both easy to get subtly wrong).
"""

import math

import pytest

from repro.serve import ARRIVAL_PROCESSES, ArrivalConfig, arrival_times
from repro.sim.rng import RandomStreams


def times(cfg, seed=7, limit=10**9):
    return list(arrival_times(cfg, RandomStreams(seed), limit))


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_seeded_determinism(process):
    cfg = ArrivalConfig(process=process, rate=30.0, horizon_s=20.0)
    assert times(cfg) == times(cfg)


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_seed_changes_times(process):
    cfg = ArrivalConfig(process=process, rate=30.0, horizon_s=20.0)
    assert times(cfg, seed=1) != times(cfg, seed=2)


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_times_monotone_and_within_horizon(process):
    cfg = ArrivalConfig(process=process, rate=50.0, horizon_s=10.0)
    ts = [t for t, _ in times(cfg)]
    assert ts == sorted(ts)
    assert all(0.0 <= t <= 10.0 for t in ts)


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_mean_rate_matches_config(process):
    # Long horizon so the law of large numbers has room: the empirical
    # rate must land within 10% of the configured one for every process
    # shape (Poisson trivially; bursty via the on-rate compensation;
    # diurnal because the sinusoid averages out over whole periods).
    rate = 40.0
    horizon = 3000.0
    cfg = ArrivalConfig(
        process=process, rate=rate, horizon_s=horizon, period_s=50.0
    )
    n = len(times(cfg))
    assert math.isclose(n / horizon, rate, rel_tol=0.10)


def test_limit_caps_count():
    cfg = ArrivalConfig(process="poisson", rate=100.0, horizon_s=1000.0)
    assert len(times(cfg, limit=17)) == 17


def test_priority_fraction_tags_roughly_that_share():
    cfg = ArrivalConfig(
        process="poisson", rate=50.0, horizon_s=100.0, priority_fraction=0.25
    )
    arrivals = times(cfg)
    share = sum(1 for _, prio in arrivals if prio) / len(arrivals)
    assert 0.15 < share < 0.35


def test_zero_priority_fraction_tags_none():
    cfg = ArrivalConfig(process="poisson", rate=50.0, horizon_s=50.0)
    assert not any(prio for _, prio in times(cfg))


def test_bursty_is_burstier_than_poisson():
    # Dispersion test: the variance/mean ratio of per-second counts is ~1
    # for Poisson and strictly larger for the on/off-modulated process.
    horizon = 400.0

    def dispersion(process):
        cfg = ArrivalConfig(
            process=process,
            rate=20.0,
            horizon_s=horizon,
            burst_on_s=2.0,
            burst_off_s=6.0,
        )
        counts = [0] * int(horizon)
        for t, _ in times(cfg):
            counts[int(t)] += 1
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        return var / mean

    assert dispersion("bursty") > 2.0 * dispersion("poisson")


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(process="sawtooth"),
        dict(rate=0.0),
        dict(rate=-3.0),
        dict(horizon_s=-1.0),
        dict(burst_on_s=0.0),
        dict(burst_off_s=-1.0),
        dict(process="diurnal", period_s=0.0),
        dict(process="diurnal", amplitude=1.5),
        dict(process="diurnal", amplitude=-0.1),
        dict(max_pending=0),
        dict(policy="drop-all"),
        dict(priority_fraction=1.5),
        dict(priority_fraction=-0.5),
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        ArrivalConfig(**kwargs)
