"""Shed-policy edge cases: fallback to reject, slot re-stamping, reuse.

The shed policy evicts the youngest *sheddable* pending query — not
started, not priority.  When nothing qualifies it must fall back to a
plain reject and leave the admission ledger balanced; when a slot is
taken over (possibly repeatedly) the new tenant gets a fresh arrival
stamp and lane, and nothing of the old tenant — tasks, priority bit,
arrival stamp — may leak into the reused slot.
"""

import pytest

from repro.core import S3aSim, SimulationConfig
from repro.core.master import Master
from repro.serve import ArrivalConfig


def make_master(max_pending=2, **kwargs):
    arrival = ArrivalConfig(
        process="poisson", rate=5.0, max_pending=max_pending, policy="shed"
    )
    params = dict(
        nprocs=4, nqueries=8, nfragments=3, check=True, arrival=arrival
    )
    params.update(kwargs)
    cfg = SimulationConfig(strategy="ww-list", **params)
    app = S3aSim(cfg)
    return Master(app.world.comm.view(0), cfg, app.fh), app


class TestFallbackToReject:
    def test_all_started_rejects_with_balanced_ledger(self):
        master, app = make_master(max_pending=2)
        master.on_arrival(False)
        master.on_arrival(False)
        s = master.serve
        s.started.update({0, 1})  # both queries have assigned tasks
        master.on_arrival(False)
        assert s.rejected == 1
        assert s.shed == 0
        assert s.admitted == 2
        arrivals = app.world.env.check.arrivals
        assert arrivals["offered"] == 3
        assert arrivals["admitted"] + arrivals["rejected"] == arrivals["offered"]

    def test_all_priority_rejects_with_balanced_ledger(self):
        master, app = make_master(max_pending=2)
        master.on_arrival(True)
        master.on_arrival(True)
        master.on_arrival(False)
        s = master.serve
        assert s.rejected == 1
        assert s.shed == 0
        arrivals = app.world.env.check.arrivals
        assert arrivals["admitted"] + arrivals["rejected"] == arrivals["offered"]

    def test_priority_arrival_can_still_shed_normal_work(self):
        master, _ = make_master(max_pending=2)
        master.on_arrival(False)
        master.on_arrival(False)
        master.on_arrival(True)  # priority arrival sheds slot 1
        s = master.serve
        assert s.shed == 1
        assert s.rejected == 0
        assert 1 in s.priority  # the reused slot is now in the fast lane


class TestSlotReuse:
    def test_slot_restamped_on_each_takeover(self):
        master, _ = make_master(max_pending=1)
        master.on_arrival(False)
        s = master.serve
        # Backdate the tenant, then shed it twice over: each takeover must
        # re-stamp the slot's arrival time to "now".  (The priority tenant
        # arrives last — a priority slot is itself unsheddable.)
        s.arrival_t[0] = -5.0
        master.on_arrival(False)
        assert s.arrival_t[0] == master.comm.env.now
        assert 0 not in s.priority  # the second tenant is normal work
        s.arrival_t[0] = -7.0
        master.on_arrival(True)
        assert s.arrival_t[0] == master.comm.env.now
        assert 0 in s.priority
        assert s.shed == 2
        assert s.admitted == 1  # one slot, three tenants
        assert s.offered == 3

    def test_no_task_leakage_across_takeover(self):
        master, _ = make_master(max_pending=1, nfragments=3)
        master.on_arrival(False)
        master.on_arrival(False)  # sheds slot 0, re-enqueues it
        tasks_for_slot = [t for t in master.tasks if t.query_id == 0]
        assert len(tasks_for_slot) == master.cfg.nfragments  # not doubled
        assert master.serve.shed == 1

    def test_content_survives_takeover(self):
        # The workload is a function of the slot's content id: a takeover
        # reuses the slot, so it reuses the content — arrival stamp and
        # lane are the only things that move.
        master, _ = make_master(max_pending=1)
        master.on_arrival(False)
        assert master.serve.content[0] == 0
        master.on_arrival(True)
        assert master.serve.content[0] == 0


class TestEndToEnd:
    def test_all_priority_load_never_sheds(self):
        # priority_fraction=1.0: every pending query is priority, so the
        # shed policy degrades to reject on every full-queue arrival and
        # the run still completes with a balanced ledger (checker on).
        cfg = SimulationConfig(
            strategy="ww-list", nprocs=4, nqueries=10, nfragments=3,
            check=True,
            arrival=ArrivalConfig(
                process="poisson", rate=50.0, max_pending=2,
                policy="shed", priority_fraction=1.0,
            ),
        )
        result = S3aSim(cfg).run()
        s = result.serve_stats
        assert s["shed"] == 0.0
        assert s["rejected"] > 0.0
        assert s["admitted"] + s["rejected"] == s["offered"]
        assert s["completed"] == s["admitted"]
        assert result.file_stats.complete

    @pytest.mark.parametrize("strategy", ["mw", "ww-posix", "ww-list"])
    def test_saturating_shed_load_conserves(self, strategy):
        cfg = SimulationConfig(
            strategy=strategy, nprocs=4, nqueries=12, nfragments=3,
            check=True,
            arrival=ArrivalConfig(
                process="poisson", rate=100.0, max_pending=2, policy="shed"
            ),
        )
        result = S3aSim(cfg).run()
        s = result.serve_stats
        assert s["shed"] > 0.0
        assert s["completed"] == s["admitted"]
        assert s["pending"] == 0.0
        assert result.file_stats.complete
