"""Latency statistics with zero completions are NaN, rendered as ``-``.

A run cut off before its first durable query has *unknown* latency; the
old behaviour reported 0.000s percentiles, indistinguishable from a
genuinely instant service.  ``ServeState.stats()`` now returns NaN for
every latency field when nothing completed, and the CLI prints ``-``.
"""

import math

from repro.cli import main
from repro.serve import ArrivalConfig, ServeState, format_latency


def test_stats_are_nan_with_zero_completions():
    state = ServeState(ArrivalConfig(process="poisson", rate=1.0))
    state.offered = 3
    state.admitted = 2
    stats = state.stats()
    assert stats["completed"] == 0.0
    for key in (
        "latency_mean_s",
        "latency_p50_s",
        "latency_p95_s",
        "latency_p99_s",
        "latency_max_s",
    ):
        assert math.isnan(stats[key]), key


def test_stats_are_finite_after_first_completion():
    state = ServeState(ArrivalConfig(process="poisson", rate=1.0))
    state.admitted = 1
    state.completed = 1
    state.latency.observe(0.25)
    stats = state.stats()
    assert stats["latency_mean_s"] == 0.25
    assert not math.isnan(stats["latency_p99_s"])


def test_format_latency():
    assert format_latency(float("nan")) == "-"
    assert format_latency(1.23456) == "1.235"
    assert format_latency(0.0) == "0.000"


def test_cli_until_before_first_completion_prints_dashes(capsys):
    # Cut off at t=0.01: nothing can have completed, so every latency
    # field must print as '-', never a fabricated 0.000.
    code = main(
        [
            "serve",
            "--nprocs", "4",
            "--nqueries", "4",
            "--nfragments", "4",
            "--arrival-rate", "10",
            "--until", "0.01",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "completed=0" in out
    assert "mean=-s" in out
    assert "p50=-s" in out
    assert "p99=-s" in out
    assert "0.000s" not in out
