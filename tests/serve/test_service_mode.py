"""End-to-end online service mode: admission, latency, determinism.

The load-bearing guarantee is the first one: a config with no arrival
model must reproduce the seed implementation bit-for-bit — the serve
machinery may not add a single event to batch runs.  The rest exercises
the open-loop path itself: every strategy completes under arrivals, the
admission ledger balances, serve runs are deterministic across process
pools, and a horizon cutoff leaves no dangling trace intervals.
"""

import pytest

from repro.check.metamorphic import CheckCase, relation_arrivals
from repro.core import S3aSim, SimulationConfig
from repro.exec import PointSpec, run_points
from repro.serve import ARRIVAL_PROCESSES, ArrivalConfig
from repro.trace import TraceRecorder

SMALL = dict(nprocs=4, nqueries=3, nfragments=6)

#: Seed completion times (same values as tests/obs/test_determinism.py):
#: the serve sweep must leave batch mode untouched.
GOLDEN = {
    "mw": 25.410715708394612,
    "ww-posix": 24.30148509613702,
    "ww-list": 21.376782075112857,
    "ww-coll": 21.81401815133468,
}

STRATEGIES = tuple(GOLDEN)


def serve_config(strategy="ww-list", arrival=None, **kwargs):
    if arrival is None:
        arrival = ArrivalConfig(process="poisson", rate=10.0, max_pending=8)
    params = dict(nprocs=4, nqueries=6, nfragments=4, check=True)
    params.update(kwargs)
    return SimulationConfig(strategy=strategy, arrival=arrival, **params)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_batch_mode_is_bit_identical_to_seed(strategy):
    cfg = SimulationConfig(strategy=strategy, arrival=None, check=True, **SMALL)
    result = S3aSim(cfg).run()
    assert result.elapsed == GOLDEN[strategy]
    assert result.serve_stats == {}
    assert result.file_stats.complete


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_serve_completes_and_conserves(strategy):
    cfg = serve_config(strategy=strategy, store_data=True)
    result = S3aSim(cfg).run()
    s = result.serve_stats
    assert s["offered"] == 6.0
    assert s["admitted"] + s["rejected"] == s["offered"]
    assert s["completed"] == s["admitted"]
    assert s["pending"] == 0.0
    assert s["shed"] == 0.0  # reject policy never sheds
    # Latency percentiles are populated and ordered.
    assert 0.0 < s["latency_p50_s"] <= s["latency_p95_s"]
    assert s["latency_p95_s"] <= s["latency_p99_s"] <= s["latency_max_s"]
    # The file holds exactly the admitted queries' bytes, gaplessly.
    assert result.file_stats.complete


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_serve_deterministic_serial_vs_pool(process):
    # Same seed → identical elapsed and serve counters whether the points
    # run inline or fan out over a process pool (pickling round-trip
    # included).  One spec per strategy, every arrival preset.
    arrival = ArrivalConfig(process=process, rate=10.0, max_pending=8)
    specs = [
        PointSpec(
            key=(strategy,),
            config=serve_config(strategy=strategy, arrival=arrival),
        )
        for strategy in STRATEGIES
    ]
    serial = run_points(specs, jobs=1)
    fanned = run_points(specs, jobs=2)
    for one, two in zip(serial, fanned):
        assert one.ok and two.ok
        assert one.result.elapsed == two.result.elapsed
        assert one.result.serve_stats == two.result.serve_stats


def test_serve_repeated_run_is_identical():
    cfg = serve_config()
    a = S3aSim(cfg).run()
    b = S3aSim(cfg).run()
    assert a.elapsed == b.elapsed
    assert a.serve_stats == b.serve_stats


def test_reject_policy_rejects_over_bound():
    arrival = ArrivalConfig(process="poisson", rate=5.0, max_pending=4)
    cfg = serve_config(arrival=arrival)
    s = S3aSim(cfg).run().serve_stats
    assert s["rejected"] == 2.0  # all 6 offered at once, bound of 4
    assert s["admitted"] == 4.0
    assert s["completed"] == 4.0


def test_shed_policy_prefers_shedding_unstarted_work():
    arrival = ArrivalConfig(
        process="bursty", rate=30.0, max_pending=3, policy="shed"
    )
    cfg = serve_config(strategy="ww-list", nqueries=10, store_data=True)
    cfg = cfg.with_(arrival=arrival)
    result = S3aSim(cfg).run()
    s = result.serve_stats
    assert s["shed"] > 0  # the burst found sheddable (unstarted) victims
    # Every arrival is accounted for: it got a fresh slot, was turned
    # away, or displaced (and reused the slot of) a shed victim.
    assert s["admitted"] + s["rejected"] + s["shed"] == s["offered"]
    assert s["completed"] == s["admitted"]
    assert result.file_stats.complete  # shed slots were re-filled and written


def test_priority_lane_admits_and_completes():
    arrival = ArrivalConfig(
        process="poisson",
        rate=10.0,
        max_pending=8,
        policy="shed",
        priority_fraction=0.5,
    )
    cfg = serve_config(arrival=arrival, nqueries=8)
    s = S3aSim(cfg).run().serve_stats
    assert s["completed"] == s["admitted"]
    assert s["pending"] == 0.0


def test_horizon_cutoff_leaves_wellformed_trace():
    # Cutting the run off mid-flight must not leak open trace intervals:
    # pending queries' latency bars are discarded and every rank's
    # timeline is aborted at the cutoff instant.
    arrival = ArrivalConfig(process="poisson", rate=2.0, max_pending=8)
    cfg = serve_config(arrival=arrival, nqueries=20)
    recorder = TraceRecorder()
    app = S3aSim(cfg, recorder=recorder)
    result = app.run(until=5.0)
    assert result.elapsed == 5.0
    s = result.serve_stats
    assert s["pending"] > 0  # the cutoff genuinely interrupted work
    assert not recorder._open  # no interval survives the cleanup
    for interval in recorder.intervals:
        assert interval.end is not None
        assert interval.end <= 5.0


def test_serve_rate_to_infinity_matches_batch():
    # Direct call of the metamorphic relation: an effectively infinite
    # arrival rate with max_pending == nqueries degenerates to the batch
    # run's byte-identical output.
    case = CheckCase(
        seed=1234,
        nprocs=4,
        nqueries=3,
        nfragments=4,
        nservers=2,
        write_every=1,
        strategy="ww-list",
    )
    assert relation_arrivals(case) is None


def test_serve_rejects_incompatible_configs():
    arrival = ArrivalConfig()
    with pytest.raises(ValueError, match="write_every"):
        SimulationConfig(arrival=arrival, write_every=2, **SMALL)
    with pytest.raises(ValueError, match="resume"):
        SimulationConfig(arrival=arrival, resume_from_query=1, **SMALL)
