"""Multi-master sharding: placement, stealing, conservation, bit-identity.

The load-bearing guarantee mirrors serve mode's: a single-master
configuration (``--masters 1`` or no shard config at all) must reproduce
the seed bit-for-bit.  On top of that the sharded path itself must
conserve queries globally *and* per shard (the checker's extended ledger
runs on every test here), keep every shard's output file dense, and
actually steal when placement is skewed.
"""

import pytest

from repro.analysis import masters_sweep
from repro.core import S3aSim, SimulationConfig
from repro.core.app import run_simulation
from repro.serve import ArrivalConfig
from repro.shard import PLACEMENTS, ShardConfig, partition_ranks, place
from repro.shard.group import MasterGroup, run_sharded

#: Seed completion times (tests/obs/test_determinism.py owns these).
GOLDEN = {
    "mw": 25.410715708394612,
    "ww-posix": 24.30148509613702,
    "ww-list": 21.376782075112857,
    "ww-coll": 21.81401815133468,
}

STRATEGIES = tuple(GOLDEN)

SMALL = dict(nprocs=4, nqueries=3, nfragments=6)


def sharded_config(strategy="ww-list", masters=2, placement="range", **kwargs):
    params = dict(
        nprocs=8,
        nqueries=20,
        nfragments=5,
        check=True,
        arrival=ArrivalConfig(process="poisson", rate=5.0),
        shard=ShardConfig(nshards=masters, placement=placement),
    )
    params.update(kwargs)
    return SimulationConfig(strategy=strategy, **params)


class TestUnsharded:
    """shard=None and nshards=1 are the seed, bit for bit."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batch_golden_through_both_entrypoints(self, strategy):
        cfg = SimulationConfig(strategy=strategy, check=True, **SMALL)
        assert run_simulation(cfg).elapsed == GOLDEN[strategy]
        single = cfg.with_(shard=ShardConfig(nshards=1))
        assert run_sharded(single).elapsed == GOLDEN[strategy]

    def test_single_shard_serve_matches_unsharded(self):
        arrival = ArrivalConfig(process="poisson", rate=10.0, max_pending=8)
        base = SimulationConfig(
            strategy="ww-list", nprocs=4, nqueries=6, nfragments=4,
            check=True, arrival=arrival,
        )
        plain = S3aSim(base).run()
        single = run_sharded(base.with_(shard=ShardConfig(nshards=1)))
        assert single.elapsed == plain.elapsed
        assert single.serve_stats == plain.serve_stats


class TestPlacement:
    """Placement is a pure function of the arrival index — no randomness."""

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_every_index_lands_on_a_shard(self, placement):
        for nshards in (1, 2, 3, 8):
            shards = [place(i, nshards, placement, 100) for i in range(100)]
            assert all(0 <= s < nshards for s in shards)

    def test_hash_spreads(self):
        shards = [place(i, 4, "hash", 1000) for i in range(1000)]
        counts = [shards.count(s) for s in range(4)]
        assert min(counts) > 150  # roughly uniform

    def test_range_is_contiguous_and_skewed_free(self):
        # Range placement is monotone: shard index never decreases.
        shards = [place(i, 3, "range", 30) for i in range(30)]
        assert shards == sorted(shards)
        assert set(shards) == {0, 1, 2}

    def test_partition_ranks_tile_the_world(self):
        for nprocs, nshards in ((8, 2), (9, 4), (16, 3), (7, 3)):
            blocks = [partition_ranks(nprocs, nshards, i) for i in range(nshards)]
            flat = [r for block in blocks for r in block]
            assert flat == list(range(nprocs))
            sizes = [len(b) for b in blocks]
            assert max(sizes) - min(sizes) <= 1
            assert min(sizes) >= 1


class TestConfigValidation:
    def test_sharding_requires_serve_mode(self):
        with pytest.raises(ValueError, match="serve"):
            SimulationConfig(
                strategy="ww-list", nprocs=8, nqueries=4, nfragments=4,
                shard=ShardConfig(nshards=2),
            )

    def test_sharding_requires_two_ranks_per_shard(self):
        with pytest.raises(ValueError, match="processes"):
            SimulationConfig(
                strategy="ww-list", nprocs=5, nqueries=4, nfragments=4,
                arrival=ArrivalConfig(process="poisson", rate=5.0),
                shard=ShardConfig(nshards=3),
            )

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            ShardConfig(nshards=2, placement="modulo")


class TestShardedRuns:
    """The checker's global + per-shard ledgers run on every one of these."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_complete_and_conserve(self, strategy):
        result = run_simulation(sharded_config(strategy=strategy))
        s = result.serve_stats
        assert s["offered"] == 20.0
        assert s["completed"] + s["shed"] + s["rejected"] == s["offered"]
        assert s["pending"] == 0.0
        # Slots: every steal re-admits the query on the thief.
        assert s["admitted"] == s["offered"] - s["rejected"] + s["steals"]
        assert s["steals"] == s["donated"]
        assert result.file_stats.dense
        assert result.file_stats.complete

    def test_range_placement_forces_steals(self):
        # Range placement front-loads shard 0; shard 1 must steal to eat.
        result = run_simulation(sharded_config(masters=2, placement="range"))
        assert result.serve_stats["steals"] > 0

    def test_steal_disabled_stays_put(self):
        cfg = sharded_config(masters=2, placement="range")
        cfg = cfg.with_(shard=ShardConfig(nshards=2, placement="range", steal=False))
        result = run_simulation(cfg)
        s = result.serve_stats
        assert s["steals"] == 0.0
        assert s["donated"] == 0.0
        assert s["completed"] + s["shed"] + s["rejected"] == s["offered"]

    def test_per_shard_stats_sum_to_global(self):
        result = run_simulation(sharded_config(masters=4, nprocs=8, nqueries=24))
        merged = result.serve_stats
        for key in ("offered", "completed", "rejected", "shed"):
            assert merged[key] == sum(
                s.get(key, 0.0) for s in result.shard_serve_stats
            )
        assert merged["steals"] == sum(
            s.get("stolen", 0.0) for s in result.shard_serve_stats
        )
        assert merged["donated"] == sum(
            s.get("donated", 0.0) for s in result.shard_serve_stats
        )

    def test_stolen_latency_spans_original_arrival(self):
        # A stolen query's latency clock starts at its original arrival, so
        # the merged max must be at least every shard's local max.
        result = run_simulation(sharded_config(masters=2, placement="range"))
        merged = result.serve_stats
        assert result.serve_stats["steals"] > 0
        local_max = max(
            s["latency_max_s"] for s in result.shard_serve_stats if s["completed"]
        )
        assert merged["latency_max_s"] == local_max

    def test_determinism(self):
        cfg = sharded_config(masters=3, nprocs=9, placement="hash")
        a = run_simulation(cfg)
        b = run_simulation(cfg)
        assert a.elapsed == b.elapsed
        assert a.serve_stats["completed"] == b.serve_stats["completed"]
        assert a.serve_stats["steals"] == b.serve_stats["steals"]
        assert a.shard_serve_stats[0]["completed"] == b.shard_serve_stats[0]["completed"]

    def test_cutoff_is_well_formed(self):
        cfg = sharded_config(masters=2)
        result = MasterGroup(cfg).run(until=1.0)
        s = result.serve_stats
        assert result.elapsed == 1.0
        if not s["completed"]:
            assert s["latency_p99_s"] != s["latency_p99_s"]  # NaN

    def test_metrics_expose_steal_counters(self):
        cfg = sharded_config(masters=2, placement="range").with_(
            collect_metrics=True
        )
        result = run_simulation(cfg)
        snapshot = result.metrics
        assert snapshot is not None
        total = snapshot.counter_total("shard.steals")
        assert total == result.serve_stats["steals"]
        assert (
            snapshot.counter_total("shard.donated_queries")
            == result.serve_stats["donated"]
        )


class TestMastersSweep:
    def test_sweep_covers_axis_and_keeps_masters_one_plain(self):
        base = SimulationConfig(
            strategy="ww-list", nprocs=8, nqueries=12, nfragments=4,
            check=True, arrival=ArrivalConfig(process="poisson", rate=6.0),
        )
        sweep = masters_sweep(
            base, master_counts=(1, 2), strategies=("ww-list", "mw")
        )
        assert sweep.axis_name == "masters"
        assert len(sweep.points) == 4
        for point in sweep.points:
            s = point.result.serve_stats
            assert s["completed"] + s["shed"] + s["rejected"] == s["offered"]
            if point.x == 1.0:
                # Unsharded result object: no shard keys at all.
                assert "masters" not in s
            else:
                assert s["masters"] == point.x

    def test_sweep_requires_arrival(self):
        base = SimulationConfig(
            strategy="ww-list", nprocs=8, nqueries=4, nfragments=4
        )
        with pytest.raises(ValueError, match="arrival"):
            masters_sweep(base, master_counts=(1, 2))
