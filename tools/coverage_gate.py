#!/usr/bin/env python
"""Per-package line-coverage ratchet.

Reads a Cobertura ``coverage.xml`` (as written by ``pytest --cov``) and
fails if any named package falls below its floor:

    python tools/coverage_gate.py coverage.xml \
        --min repro.mpiio=85 --min repro.adapt=85

Package membership is decided from each class's ``filename`` attribute
(``src/repro/mpiio/file.py`` belongs to ``repro.mpiio``), so the gate is
independent of how coverage.py groups packages.  Prefix-matching means
``--min repro=60`` would gate the whole tree.
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET


def parse_floor(spec: str):
    name, _, floor = spec.partition("=")
    if not floor:
        raise argparse.ArgumentTypeError(
            f"expected PACKAGE=PERCENT, got {spec!r}"
        )
    return name, float(floor)


def module_of(filename: str) -> str:
    """Dotted module path of a source filename, rooted at ``repro``."""
    parts = filename.replace("\\", "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts)


def package_rates(xml_path: str):
    """{dotted module: (covered, total)} summed over every <class>."""
    rates: dict = {}
    for cls in ET.parse(xml_path).getroot().iter("class"):
        module = module_of(cls.get("filename", ""))
        covered, total = rates.get(module, (0, 0))
        for line in cls.iter("line"):
            total += 1
            if int(line.get("hits", "0")) > 0:
                covered += 1
        rates[module] = (covered, total)
    return rates


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("xml", help="Cobertura coverage.xml path")
    ap.add_argument(
        "--min",
        dest="floors",
        type=parse_floor,
        action="append",
        default=[],
        metavar="PACKAGE=PERCENT",
        help="fail if PACKAGE line coverage is below PERCENT (repeatable)",
    )
    args = ap.parse_args(argv)

    rates = package_rates(args.xml)
    failed = False
    for package, floor in args.floors:
        prefix = package + "."
        covered = total = 0
        for module, (c, t) in rates.items():
            if module == package or module.startswith(prefix):
                covered += c
                total += t
        if total == 0:
            print(f"coverage-gate: {package}: no measured lines — FAIL")
            failed = True
            continue
        pct = 100.0 * covered / total
        verdict = "ok" if pct >= floor else "FAIL"
        print(
            f"coverage-gate: {package}: {covered}/{total} lines "
            f"({pct:.1f}%, floor {floor:.0f}%) — {verdict}"
        )
        if pct < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
