#!/usr/bin/env python3
"""Writing simulator code in mpi4py style.

The reproduction environment has no MPI runtime, so the simulator ships an
mpi4py-flavoured facade (`repro.mpi.compat`): ``Get_rank``/``Get_size``,
pickled-object ``send``/``recv``, ``isend``/``irecv`` with ``Test``/
``Wait``, collectives, and ``MPI.File``-style collective I/O.  The only
edit real mpi4py code needs is the cooperative-blocking idiom —
``yield from`` on anything that would block.

This example ports two snippets from the mpi4py tutorial (point-to-point
dictionaries and collective file I/O) and runs them on the simulated
Feynman cluster.

Run:  python examples/mpi4py_style.py
"""

from repro.mpi import CompatComm, CompatFile, MpiWorld, NetworkConfig
from repro.mpi.compat import MODE_CREATE, MODE_WRONLY
from repro.pvfs import FileSystem, PVFSConfig


def point_to_point() -> None:
    world = MpiWorld(nranks=2, network=NetworkConfig.myrinet2000())

    def main(raw_comm):
        comm = CompatComm(raw_comm)
        rank = comm.Get_rank()
        if rank == 0:
            data = {"a": 7, "b": 3.14}
            yield from comm.send(data, dest=1, tag=11)
        elif rank == 1:
            data = yield from comm.recv(source=0, tag=11)
            return data

    world.spawn_all(main)
    received = world.run()[1]
    print(f"p2p: rank 1 received {received} "
          f"(simulated time {world.env.now * 1e6:.1f} µs)")


def collective_io() -> None:
    world = MpiWorld(nranks=4, network=NetworkConfig.myrinet2000())
    fs = FileSystem(
        world.env,
        PVFSConfig.feynman(store_data=True),
        client_nic=lambda rank: world.network.nic(rank),
    )

    def main(raw_comm):
        comm = CompatComm(raw_comm)
        fh = yield from CompatFile.Open(
            comm, fs, "./datafile.contig", MODE_WRONLY | MODE_CREATE
        )
        buffer = bytes([comm.rank]) * (1 << 16)
        offset = comm.rank * len(buffer)
        yield from fh.Write_at_all(offset, buffer)
        yield from fh.Sync()
        yield from fh.Close()

    world.spawn_all(main)
    world.run()
    store = fs.lookup("./datafile.contig").bytestore
    print(f"collective I/O: wrote {store.total_bytes():,} bytes in "
          f"{len(store.extents())} extent(s) "
          f"(simulated time {world.env.now * 1e3:.2f} ms)")
    assert store.is_dense(4 << 16)


def main() -> None:
    point_to_point()
    collective_io()
    print("\nThe same code shape you would run under `mpiexec -n 4` —")
    print("but on a simulated Myrinet + PVFS2 machine, in one process.")


if __name__ == "__main__":
    main()
