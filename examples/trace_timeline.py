#!/usr/bin/env python3
"""Jumpshot-style timelines: *seeing* the synchronization cost.

S3aSim's MPE/Jumpshot integration is one of its advertised features.  This
example records a full execution trace for WW-List and WW-Coll and renders
them as ASCII timelines.  The collective strategy's lock-step bands (all
workers writing at the same instants, idle gaps before each collective)
contrast with the individual strategy's free-running interleave of compute
and I/O.

Run:  python examples/trace_timeline.py
"""

from repro.core import LABELS, S3aSim, SimulationConfig
from repro.trace import TraceRecorder, export_json, render_timeline

WORKLOAD = dict(nprocs=6, nqueries=6, nfragments=16)


def trace_run(strategy: str) -> TraceRecorder:
    recorder = TraceRecorder()
    app = S3aSim(SimulationConfig(strategy=strategy, **WORKLOAD), recorder=recorder)
    result = app.run()
    assert result.file_stats.complete
    return recorder


def main() -> None:
    for strategy in ("ww-list", "ww-coll"):
        recorder = trace_run(strategy)
        print(f"\n=== {LABELS[strategy]} ===")
        print(render_timeline(recorder, width=96))

        path = f"/tmp/s3asim-trace-{strategy}.json"
        with open(path, "w") as fh:
            export_json(recorder, fh)
        print(f"(full trace exported to {path})")

    print(
        "\nHow to read it: rank 0 is the master (mostly 'd' — waiting on\n"
        "and serving worker requests).  Workers mix compute 'C', writes\n"
        "'W', waiting 'd', and barriers '='.  Under WW-Coll the W columns\n"
        "align vertically across workers — that alignment *is* the\n"
        "inherent synchronization of collective I/O."
    )


if __name__ == "__main__":
    main()
