#!/usr/bin/env python3
"""Will I/O strategy matter on future hardware?  (The paper's motivation.)

The paper argues that FPGA/ASIC search engines (BioScan, GeneMatcher,
DeCypher) and smarter heuristics (SSAHA, PatternHunter, BLAT) will shrink
compute time until I/O dominates.  This example sweeps the simulated
compute speed from 1x to 32x for two strategies and shows where each one's
wall-clock time flattens — the point past which faster search hardware
buys nothing because the I/O strategy is the bottleneck.

It then re-runs the fast-compute case on a "modern" cluster preset
(fast network + NVMe-like storage) to show the bottleneck moving again.

Run:  python examples/future_hardware.py
"""

from repro.cluster import get_preset
from repro.core import LABELS, SimulationConfig, run_simulation
from repro.workload import ComputeModel

SPEEDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
NPROCS = 24
WORKLOAD = dict(nqueries=10, nfragments=48)


def sweep(strategy: str, network=None, pvfs=None):
    times = []
    for speed in SPEEDS:
        kwargs = dict(
            nprocs=NPROCS,
            strategy=strategy,
            compute=ComputeModel(speed=speed),
            **WORKLOAD,
        )
        if network is not None:
            kwargs["network"] = network
        if pvfs is not None:
            kwargs["pvfs"] = pvfs
        times.append(run_simulation(SimulationConfig(**kwargs)).elapsed)
    return times


def print_series(label: str, times) -> None:
    cells = "  ".join(f"{t:7.2f}" for t in times)
    flat = times[-1] / times[0]
    print(f"{label:<26s} {cells}   (32x compute -> {1/flat:4.1f}x faster)")


def main() -> None:
    header = "  ".join(f"{s:>6.0f}x" for s in SPEEDS)
    print(f"{'compute speed ->':<26s} {header}")
    print("\n-- 2006 cluster (Myrinet + 16-server PVFS2) --")
    for strategy in ("mw", "ww-list"):
        print_series(LABELS[strategy], sweep(strategy))

    modern = get_preset("modern")
    print("\n-- modern cluster preset (fast fabric + NVMe-like storage) --")
    for strategy in ("mw", "ww-list"):
        print_series(
            LABELS[strategy],
            sweep(strategy, network=modern.network, pvfs=modern.pvfs),
        )

    print(
        "\nTakeaway: on the 2006 system, master-writing gains almost\n"
        "nothing from faster search — exactly the paper's argument that\n"
        "future sequence-search tools need worker-writing I/O strategies.\n"
        "On modern storage the flattening point moves, but the ordering\n"
        "of strategies persists."
    )


if __name__ == "__main__":
    main()
