#!/usr/bin/env python3
"""Quickstart: run one S3aSim simulation and read the results.

Simulates a 16-process mpiBLAST-style job (1 master + 15 workers,
database segmentation) searching 20 queries against a 128-fragment
NT-shaped database, writing results with the individual worker-writing
list-I/O strategy the paper proposes — on a simulated Myrinet cluster
with a 16-server PVFS2 volume.

Run:  python examples/quickstart.py
"""

from repro.core import Phase, SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        nprocs=16,          # 1 master + 15 workers
        strategy="ww-list",  # the paper's winning strategy
        query_sync=False,    # no forced barrier after each query's I/O
    )

    print(f"workload: {config.nqueries} queries x {config.nfragments} "
          f"fragments = {config.ntasks} tasks")
    expected = config.build_workload().results.run_total_bytes()
    print(f"expected output volume: {expected / 1e6:.1f} MB")
    print("running simulation ...")

    result = run_simulation(config)

    print(f"\nsimulated execution time: {result.elapsed:.2f} s")
    print("\nmean worker phase breakdown (the paper's Figure 3/4 buckets):")
    worker = result.worker_mean
    for phase in Phase:
        seconds = worker[phase]
        if seconds > 0.001:
            bar = "#" * int(50 * seconds / worker.total)
            print(f"  {phase.value:>18s} {seconds:8.2f} s  {bar}")

    fstat = result.file_stats
    print(f"\noutput file: {fstat.total_bytes:,} bytes "
          f"({fstat.nextents} extent(s), dense={fstat.dense})")
    assert fstat.complete, "output file must be gapless and complete"
    print("file verified: every result landed exactly once, no gaps.")


if __name__ == "__main__":
    main()
