#!/usr/bin/env python3
"""Customizing S3aSim: your own database, queries, cluster, and policies.

Everything the paper lists as a tunable ("total number of fragments ...,
box histogram of input query sizes, box histogram of database sequence
sizes, min/max count of results, minimum result size, compute speeds,
MPI-IO hints, parallel I/O, write all data at the end") is a field of
``SimulationConfig``.  This example builds a protein-database scenario
from scratch and contrasts write-after-every-query against the
mpiBLAST-1.2 / pioBLAST write-at-end policy.

Run:  python examples/custom_workload.py
"""

from repro.core import SimulationConfig, run_simulation
from repro.workload import BoxHistogram, ComputeModel, ResultModel

# A protein database: sequences are far shorter than nucleotide ones
# (hundreds of residues), with a modest tail of multi-domain giants.
PROTEIN_DB = BoxHistogram.from_boxes(
    [
        (50, 200, 0.35),      # small proteins / domains
        (200, 600, 0.45),     # typical single-domain proteins
        (600, 2_000, 0.17),   # multi-domain
        (2_000, 40_000, 0.03),  # titin-like giants
    ]
)

# Queries: freshly translated ORFs, tightly distributed.
PROTEIN_QUERIES = BoxHistogram.from_boxes([(100, 1_200, 1.0)])


def build_config(write_every: int) -> SimulationConfig:
    return SimulationConfig(
        nprocs=16,
        strategy="ww-list",
        nqueries=24,
        nfragments=64,
        query_histogram=PROTEIN_QUERIES,
        db_histogram=PROTEIN_DB,
        db_total_bytes=512 * 1024 * 1024,
        # HMMer-style scoring produces fewer, larger hits per query.
        result_model=ResultModel(
            min_count=200, max_count=400, min_result_size=2048,
            max_match_B=40_000,
        ),
        # A slower per-byte search (profile HMMs cost more than BLAST).
        compute=ComputeModel(startup_s=0.02, rate_s_per_byte=4e-6),
        write_every=write_every,
        seed=77,
    )


def main() -> None:
    print("protein-search scenario (parallel-HMMer-like):")
    print(f"  db histogram mean: {PROTEIN_DB.mean():.0f} B, "
          f"query mean: {PROTEIN_QUERIES.mean():.0f} B")

    for write_every, label in (
        (1, "write after every query (mpiBLAST 1.4 style)"),
        (8, "write every 8 queries"),
        (24, "write everything at the end (mpiBLAST 1.2 / pioBLAST style)"),
    ):
        config = build_config(write_every)
        result = run_simulation(config)
        assert result.file_stats.complete
        print(
            f"  {label:<55s} {result.elapsed:7.2f}s "
            f"({result.file_stats.total_bytes / 1e6:6.1f} MB written, "
            f"{int(result.server_stats['syncs'])} server flushes)"
        )

    print(
        "\nWriting less often amortizes offset traffic and sync flushes,\n"
        "but remember the trade-off the paper names: frequent writes are\n"
        "what let a failed run resume at the right input query."
    )


if __name__ == "__main__":
    main()
