#!/usr/bin/env python3
"""Hybrid query/database segmentation (the paper's future-work strategy).

Section 5 of the paper names "hybrid query segmentation/database
segmentation strategies" as future work.  This example runs the same
workload as (a) one database-segmented job spanning the whole machine and
(b) hybrid jobs with 2 and 4 independent partitions (queries split across
partitions, database segmented within each), all sharing one PVFS2 volume
— and shows the trade-off: smaller synchronization/master scopes per
partition versus global load balance.

Run:  python examples/hybrid_segmentation.py
"""

from repro.core import HybridS3aSim, SimulationConfig, run_simulation

CONFIG = SimulationConfig(
    nprocs=24,
    strategy="ww-coll",   # collective I/O: partition scope matters most
    nqueries=12,
    nfragments=48,
)


def main() -> None:
    pure = run_simulation(CONFIG)
    print(f"pure database segmentation (1 partition): {pure.elapsed:7.2f}s")

    for k in (2, 4):
        result = HybridS3aSim(CONFIG, k).run()
        assert result.complete
        spans = ", ".join(
            f"p{i}={r.elapsed:.2f}s" for i, r in enumerate(result.partition_results)
        )
        print(f"hybrid with {k} partitions:              {result.elapsed:7.2f}s  ({spans})")

    print(
        "\nSmaller partitions shrink each collective write's scope (fewer\n"
        "workers must synchronize) and give each master fewer clients —\n"
        "but a partition that drew the expensive queries finishes last\n"
        "while the others idle.  Which side wins depends on compute\n"
        "variance, exactly the tension the paper's Figures 5-7 expose for\n"
        "WW-Coll."
    )


if __name__ == "__main__":
    main()
