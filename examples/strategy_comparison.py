#!/usr/bin/env python3
"""Choosing an I/O strategy for a parallel sequence-search tool.

Scenario: you maintain an mpiBLAST-like tool and must pick how result
data reaches the output file.  This example runs all four strategies of
the paper — master-writing (mpiBLAST-style), collective worker-writing
(pioBLAST-style), and the two individual worker-writing variants the
paper proposes — at two cluster sizes, with and without a forced
synchronization after each query, and prints a decision table.

Run:  python examples/strategy_comparison.py
"""

from repro.core import LABELS, Phase, SimulationConfig, run_simulation

STRATEGIES = ("mw", "ww-coll", "ww-posix", "ww-list")


def compare(nprocs: int, query_sync: bool):
    rows = []
    for strategy in STRATEGIES:
        config = SimulationConfig(
            nprocs=nprocs,
            strategy=strategy,
            query_sync=query_sync,
            # A lighter-than-paper workload so the example runs in seconds.
            nqueries=10,
            nfragments=48,
        )
        result = run_simulation(config)
        assert result.file_stats.complete
        rows.append((strategy, result))
    return rows


def print_table(nprocs: int, query_sync: bool) -> None:
    sync_label = "sync after each query" if query_sync else "no forced sync"
    print(f"\n=== {nprocs} processes, {sync_label} ===")
    print(
        f"{'strategy':<26s} {'total':>8s} {'compute':>8s} {'io':>8s} "
        f"{'waiting':>8s} {'sync':>8s}"
    )
    rows = compare(nprocs, query_sync)
    best = min(result.elapsed for _, result in rows)
    for strategy, result in rows:
        worker = result.worker_mean
        marker = "  <-- fastest" if result.elapsed == best else ""
        print(
            f"{LABELS[strategy]:<26s} {result.elapsed:>7.2f}s "
            f"{worker[Phase.COMPUTE]:>7.2f}s {worker[Phase.IO]:>7.2f}s "
            f"{worker[Phase.DATA_DISTRIBUTION]:>7.2f}s "
            f"{worker[Phase.SYNC]:>7.2f}s{marker}"
        )


def main() -> None:
    for nprocs in (8, 32):
        for query_sync in (False, True):
            print_table(nprocs, query_sync)

    print(
        "\nReading the table (the paper's Section 4 in miniature):\n"
        " * master-writing stops scaling once the master's single client\n"
        "   pipeline saturates — workers burn time in 'waiting';\n"
        " * collective worker-writing buys efficient large writes but\n"
        "   pays an inherent synchronization before every collective op;\n"
        " * individual worker-writing with list I/O keeps the overlap of\n"
        "   compute and I/O *and* batches noncontiguous regions — it wins."
    )


if __name__ == "__main__":
    main()
