"""Demonstrate the server-side I/O stack on the Figure-5 workload.

The paper's WW-POSIX penalty is thousands of tiny interleaved regions
hitting each I/O daemon one request at a time; WW-List hands the server
the same bytes already batched.  A real 2006 daemon softened that gap
itself — its elevator reordered the disk queue and its buffer cache
absorbed and coalesced small writes before the platter saw them.  This
benchmark runs WW-POSIX and WW-List on a reduced Figure-5 workload under
the seed's bare disk (``fifo``, cache off) and under the server stack
(``elevator`` + 4 MiB write-back cache per server) and asserts:

1. the stack reduces WW-POSIX's seek count,
2. the stack reduces WW-POSIX's elapsed time, and
3. the WW-POSIX vs WW-List gap narrows.

All reported numbers are *simulated* (deterministic), so the JSON
artifact is stable across machines and committed at
``benchmarks/output/server_cache.json``.

Usage::

    python benchmarks/bench_server_cache.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import S3aSim, SimulationConfig  # noqa: E402

MIB = 1024 * 1024

#: Reduced Figure-5 point (the full one is 64 procs / 200 queries).
WORKLOAD = dict(nprocs=16, nqueries=8, nfragments=32)

CACHE_MIB = 4.0
STRATEGIES = ("ww-posix", "ww-list")
VARIANTS = ("seed", "stack")  # bare fifo disk vs elevator + cache


def run_one(strategy: str, variant: str) -> dict:
    base = SimulationConfig(strategy=strategy, collect_metrics=True, **WORKLOAD)
    if variant == "stack":
        base = base.with_(
            pvfs=replace(
                base.pvfs,
                disk_sched="elevator",
                server_cache_B=int(CACHE_MIB * MIB),
            )
        )
    result = S3aSim(base).run()
    assert result.file_stats.complete, (strategy, variant)
    snap = result.metrics
    return {
        "strategy": strategy,
        "variant": variant,
        "elapsed_s": result.elapsed,
        "seeks": snap.counter_total("pvfs.seeks"),
        "requests": snap.counter_total("pvfs.requests"),
        "sequential_runs": snap.counter_total("pvfs.sequential_runs"),
        "cache_flushes": snap.counter_total("pvfs.cache_flushes"),
        "cache_absorbed_bytes": snap.counter_total("pvfs.cache_absorbed_bytes"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=str(Path(__file__).parent / "output" / "server_cache.json"),
        help="write the JSON artifact here",
    )
    args = parser.parse_args(argv)

    rows = {
        (s, v): run_one(s, v) for s in STRATEGIES for v in VARIANTS
    }
    posix_seed = rows[("ww-posix", "seed")]
    posix_stack = rows[("ww-posix", "stack")]
    list_seed = rows[("ww-list", "seed")]
    list_stack = rows[("ww-list", "stack")]

    gap_seed = posix_seed["elapsed_s"] - list_seed["elapsed_s"]
    gap_stack = posix_stack["elapsed_s"] - list_stack["elapsed_s"]
    seek_cut = 1.0 - posix_stack["seeks"] / posix_seed["seeks"]
    speedup = posix_seed["elapsed_s"] / posix_stack["elapsed_s"]

    print(f"{'strategy':9s} {'variant':6s} {'elapsed s':>10s} {'seeks':>8s} {'requests':>9s}")
    for (s, v), row in rows.items():
        print(
            f"{s:9s} {v:6s} {row['elapsed_s']:>10.4f} "
            f"{row['seeks']:>8g} {row['requests']:>9g}"
        )
    print(
        f"ww-posix: seeks -{seek_cut:.1%}, speedup {speedup:.2f}x; "
        f"posix-vs-list gap {gap_seed:.3f}s -> {gap_stack:.3f}s"
    )

    checks = {
        "posix_seeks_reduced": posix_stack["seeks"] < posix_seed["seeks"],
        "posix_elapsed_reduced": posix_stack["elapsed_s"] < posix_seed["elapsed_s"],
        "gap_narrowed": gap_stack < gap_seed,
    }
    doc = {
        "benchmark": "server_cache",
        "workload": dict(WORKLOAD, cache_mib=CACHE_MIB, disk_sched="elevator"),
        "rows": list(rows.values()),
        "derived": {
            "posix_seek_reduction": seek_cut,
            "posix_speedup": speedup,
            "gap_seed_s": gap_seed,
            "gap_stack_s": gap_stack,
        },
        "checks": checks,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"artifact written to {out}")

    ok = all(checks.values())
    for name, passed in checks.items():
        print(f"  {name}: {'ok' if passed else 'FAIL'}")
    print("SERVER CACHE BENCH", "PASSED" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
