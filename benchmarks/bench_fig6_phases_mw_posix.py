"""Figure 6 — per-phase timing vs compute speed for MW and WW-POSIX.

Paper shapes checked: the compute phase shrinks from ~54 s (speed 0.1) to
under a second (25.6) and the other phases take over; at slow speeds MW's
forced sync costs show up as data-distribution time; at fast speeds
WW-POSIX's forced-sync overhead (sync + data distribution) stays large.
"""

import pytest

from repro.analysis import phase_table, stacked_bars
from repro.core.phases import Phase

from conftest import FULL, SPEEDS, write_output


@pytest.mark.benchmark(group="fig6")
def test_fig6_phase_breakdown(benchmark, speed_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sections = []
    for strategy in ("mw", "ww-posix"):
        for query_sync in (False, True):
            sections.append(phase_table(speed_sweep, strategy, query_sync))
            sections.append(stacked_bars(speed_sweep, strategy, query_sync))
    text = "\n\n".join(sections)
    print("\n" + text)
    write_output("fig6_phases_mw_posix.txt", text)

    lo, hi = float(min(SPEEDS)), float(max(SPEEDS))

    # Compute phase collapses as speed rises (paper: ~54 s -> ~0.8 s).
    slow_compute = speed_sweep.lookup("mw", False, lo).worker_mean[Phase.COMPUTE]
    fast_compute = speed_sweep.lookup("mw", False, hi).worker_mean[Phase.COMPUTE]
    assert fast_compute < slow_compute / 10
    if FULL:
        assert 25 < slow_compute < 90  # paper: close to 54 s at speed 0.1
        assert fast_compute < 2.0  # paper: slightly more than 0.8 s

    # At the fast end forced sync does not help WW-POSIX appreciably.
    # (It can shave a little I/O time — the paper itself measured a ~17%
    # I/O-phase decrease from the gentler request rate — so we only
    # reject a large *improvement*, which would contradict the paper's
    # 50%+ overall penalty at full scale.)
    posix_sync = speed_sweep.lookup("ww-posix", True, hi)
    posix_nosync = speed_sweep.lookup("ww-posix", False, hi)
    assert posix_sync.elapsed >= posix_nosync.elapsed * 0.85


@pytest.mark.benchmark(group="fig6")
def test_fig6_mw_bottleneck_is_not_compute(benchmark, speed_sweep):
    """"Clearly, the application phases besides the compute phase are the
    bottleneck here" — at full speed MW's non-compute time dominates."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    hi = float(max(SPEEDS))
    mw = speed_sweep.lookup("mw", False, hi).worker_mean
    non_compute = mw.total - mw[Phase.COMPUTE]
    assert non_compute > 10 * mw[Phase.COMPUTE]
