"""Ablations — the design-space knobs DESIGN.md calls out.

Not a paper figure: these sweeps probe the sensitivity of the headline
result (WW-List wins) to the parameters the paper holds fixed or mentions
as future work:

* PVFS2 server count ("a larger file system configuration with more I/O
  bandwidth may have provided more scalable I/O performance"),
* strip size,
* list-I/O batch limit (what makes WW-List collapse to WW-POSIX),
* write frequency (write-after-every-query vs mpiBLAST-1.2-style
  write-at-end),
* collective-buffering aggregator count,
* sync-after-every-write discipline.
"""

import pytest

from repro.core import SimulationConfig, run_simulation

from conftest import write_output

NPROCS = 24
SMALL = dict(nqueries=8, nfragments=32)


def run(strategy="ww-list", **kwargs):
    merged = dict(nprocs=NPROCS, strategy=strategy, **SMALL)
    merged.update(kwargs)
    return run_simulation(SimulationConfig(**merged))


@pytest.mark.benchmark(group="ablation")
def test_ablation_server_count(benchmark):
    """More I/O servers push the I/O knee out (the paper's conjecture)."""
    def sweep():
        rows = {}
        for nservers in (4, 16, 64):
            base = SimulationConfig(nprocs=NPROCS, **SMALL)
            cfg = base.with_(pvfs=base.pvfs.__class__(nservers=nservers))
            rows[nservers] = run_simulation(cfg).elapsed
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "servers -> elapsed: " + ", ".join(
        f"{k}: {v:.2f}s" for k, v in rows.items()
    )
    print("\n" + text)
    write_output("ablation_servers.txt", text)
    assert rows[64] <= rows[4]  # more servers never hurt this workload


@pytest.mark.benchmark(group="ablation")
def test_ablation_strip_size(benchmark):
    from dataclasses import replace

    def sweep():
        rows = {}
        for strip in (16 * 1024, 64 * 1024, 1024 * 1024):
            base = SimulationConfig(nprocs=NPROCS, **SMALL)
            cfg = base.with_(pvfs=replace(base.pvfs, strip_size=strip))
            rows[strip] = run_simulation(cfg).elapsed
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "strip size -> elapsed: " + ", ".join(
        f"{k // 1024}KiB: {v:.2f}s" for k, v in rows.items()
    )
    print("\n" + text)
    write_output("ablation_strip.txt", text)
    assert all(v > 0 for v in rows.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_listio_batch_limit(benchmark):
    """Batch limit 1 degenerates list I/O towards POSIX I/O."""
    from dataclasses import replace

    def sweep():
        rows = {}
        for limit in (1, 8, 64):
            base = SimulationConfig(nprocs=NPROCS, strategy="ww-list", **SMALL)
            cfg = base.with_(pvfs=replace(base.pvfs, listio_max_regions=limit))
            rows[limit] = run_simulation(cfg).elapsed
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    posix = run("ww-posix").elapsed
    text = (
        "listio_max_regions -> elapsed: "
        + ", ".join(f"{k}: {v:.2f}s" for k, v in rows.items())
        + f" (ww-posix reference: {posix:.2f}s)"
    )
    print("\n" + text)
    write_output("ablation_listio.txt", text)
    assert rows[64] <= rows[1]
    # With batching disabled, list I/O loses most of its edge over POSIX.
    assert rows[1] > rows[64] * 0.99


@pytest.mark.benchmark(group="ablation")
def test_ablation_write_frequency(benchmark):
    """write_every=1 (paper) vs write-at-end (mpiBLAST 1.2 / pioBLAST)."""
    def sweep():
        return {
            "every-query": run("ww-list", write_every=1).elapsed,
            "every-4": run("ww-list", write_every=4).elapsed,
            "at-end": run("ww-list", write_every=SMALL["nqueries"]).elapsed,
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "write frequency -> elapsed: " + ", ".join(
        f"{k}: {v:.2f}s" for k, v in rows.items()
    )
    print("\n" + text)
    write_output("ablation_write_frequency.txt", text)
    assert all(v > 0 for v in rows.values())


@pytest.mark.benchmark(group="ablation")
def test_ablation_cb_nodes(benchmark):
    """Aggregator count for WW-Coll's two-phase writes."""
    from dataclasses import replace

    def sweep():
        rows = {}
        for cb_nodes in (1, 4, 16):
            cfg = SimulationConfig(
                nprocs=NPROCS, strategy="ww-coll", **SMALL
            )
            # Route the hint through the strategy-produced hints by
            # overriding at the app level: easiest is a custom config knob
            # via pvfs-independent MPIIOHints -- exercised through the
            # S3aSim object directly.
            from repro.core import S3aSim

            app = S3aSim(cfg)
            app.fh.hints = replace(app.fh.hints, cb_nodes=cb_nodes)
            rows[cb_nodes] = app.run().elapsed
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "cb_nodes -> elapsed: " + ", ".join(
        f"{k}: {v:.2f}s" for k, v in rows.items()
    )
    print("\n" + text)
    write_output("ablation_cb_nodes.txt", text)
    # A single aggregator funnels everything through one client pipeline —
    # strictly worse than spreading across many.
    assert rows[16] <= rows[1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_sync_after_write(benchmark):
    """The paper's sync-after-every-write discipline has a real cost."""
    def sweep():
        return {
            "sync-every-write": run("ww-list", sync_after_write=True).elapsed,
            "no-sync": run("ww-list", sync_after_write=False).elapsed,
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "sync discipline -> elapsed: " + ", ".join(
        f"{k}: {v:.2f}s" for k, v in rows.items()
    )
    print("\n" + text)
    write_output("ablation_sync_after_write.txt", text)
    assert rows["no-sync"] <= rows["sync-every-write"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_straggler_server(benchmark):
    """One slow I/O server throttles the striped volume for every
    strategy; contiguous large writes (MW, WW-Coll aggregates) ride it
    out better per byte than op-heavy noncontiguous writers."""
    from repro.core import S3aSim

    def sweep():
        rows = {}
        for strategy in ("mw", "ww-posix", "ww-list", "ww-coll"):
            cfg = SimulationConfig(nprocs=NPROCS, strategy=strategy, **SMALL)
            healthy = run_simulation(cfg).elapsed
            app = S3aSim(cfg)
            app.fs.degrade_server(0, 8.0)
            degraded = app.run().elapsed
            rows[strategy] = (healthy, degraded)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "straggler (server 0 at 1/8 speed): " + ", ".join(
        f"{k}: {h:.1f}s -> {d:.1f}s" for k, (h, d) in rows.items()
    )
    print("\n" + text)
    write_output("ablation_straggler.txt", text)
    for strategy, (healthy, degraded) in rows.items():
        assert degraded >= healthy * 0.99, strategy
