"""Section 4 headline numbers — paper vs measured, in one table.

The paper's text quotes six ratio sets:

* Figure 2 @ 96 processes, no-sync: WW-List outperforms MW by 364%,
  WW-POSIX by 33%, WW-Coll by 75%; sync: 182% / 37% / 13%.
* Figure 5 @ compute speed 25.6 (64 processes), no-sync: 592% / 32% / 98%;
  sync: 444% / 65% / 58%.

This bench regenerates the measured equivalents at the configured scale
and prints them side by side.  Shape acceptance: every measured slowdown
has the right *sign* (WW-List wins) and MW's factor is within 2x of the
paper's.  Absolute agreement is not expected (different machine, see
EXPERIMENTS.md).
"""

import pytest

from repro.analysis import FIG2_RATIOS_PCT, FIG5_RATIOS_PCT, RatioCheck

from conftest import PROCESS_COUNTS, SPEEDS, write_output


def measured_pct(sweep, strategy, query_sync, x) -> float:
    base = sweep.lookup("ww-list", query_sync, x).elapsed
    other = sweep.lookup(strategy, query_sync, x).elapsed
    return 100.0 * (other / base - 1.0)


@pytest.mark.benchmark(group="headline")
def test_headline_ratio_table(benchmark, process_sweep, speed_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    checks = []
    for label, sweep, x, paper in (
        ("Fig2@%dp" % max(PROCESS_COUNTS), process_sweep,
         float(max(PROCESS_COUNTS)), FIG2_RATIOS_PCT),
        ("Fig5@%gx" % max(SPEEDS), speed_sweep, float(max(SPEEDS)),
         FIG5_RATIOS_PCT),
    ):
        for strategy in ("mw", "ww-posix", "ww-coll"):
            for query_sync in (False, True):
                measured = measured_pct(sweep, strategy, query_sync, x)
                check = RatioCheck(
                    label=label,
                    strategy=strategy,
                    query_sync=query_sync,
                    paper_pct=paper[strategy][query_sync],
                    measured_pct=measured,
                )
                checks.append(check)
                rows.append(
                    f"{label:10s} {strategy:9s} "
                    f"{'sync' if query_sync else 'no-sync':7s} "
                    f"paper +{check.paper_pct:5.0f}%   "
                    f"measured {measured:+7.0f}%   "
                    f"{'OK' if check.within(2.5) else 'DEVIATES'}"
                )

    header = "WW-List advantage over other strategies (paper vs measured)"
    text = header + "\n" + "-" * len(header) + "\n" + "\n".join(rows)
    print("\n" + text)
    write_output("headline_ratios.txt", text)

    # Acceptance: MW always loses to WW-List, heavily (the paper's
    # strongest claim), and the POSIX gap has the right sign.
    for check in checks:
        if check.strategy == "mw":
            assert check.measured_pct > 50, f"MW too fast: {check}"
        if check.strategy == "ww-posix":
            assert check.measured_pct > -10, f"POSIX beat List: {check}"
