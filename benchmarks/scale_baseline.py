"""Regenerate or gate the committed at-scale throughput baseline.

``BENCH_scale.json`` (repo root) records end-to-end simulator throughput
at the roadmap's target scale — **1000 ranks, 128 PVFS servers** — so the
kernel's behaviour with tens of thousands of pending events is pinned by
CI, not just the small-configuration numbers in ``BENCH_engine.json``.
(The calendar-queue resize re-anchoring bug only manifested at this kind
of scale: small runs never resized with in-flight pushes.)

Two strategies cover the two event-population shapes:

* ``mw`` — master/worker: one coordinator fanning out to 999 workers,
  deep request/response queues.
* ``ww-posix`` — worker/worker with independent writes: wide synchronized
  phases, large same-timestamp batches.

``ww-coll`` is deliberately excluded: its collective machinery at 1000
ranks costs ~70 s per run, which belongs in a nightly sweep, not a
per-PR gate.

Usage::

    python benchmarks/scale_baseline.py --write BENCH_scale.json
    python benchmarks/scale_baseline.py --check BENCH_scale.json [--tolerance 0.50]

Measurements are best-of-N (minimum over repeats) so a background-noise
spike cannot fail the gate; the tolerance is generous because CI hardware
varies — the gate exists to catch algorithmic blowups (accidental O(n²)
in the kernel or resource layer), not single-digit noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import S3aSim, SimulationConfig  # noqa: E402
from repro.pvfs import PVFSConfig  # noqa: E402

SCHEMA = 1
REPEATS = 3

NRANKS = 1000
NSERVERS = 128


def _run_once(strategy: str, nfragments: int, scheduler: str) -> tuple:
    cfg = SimulationConfig(
        nprocs=NRANKS,
        nqueries=1,
        nfragments=nfragments,
        strategy=strategy,
        scheduler=scheduler,
        pvfs=PVFSConfig(nservers=NSERVERS),
    )
    app = S3aSim(cfg)
    t0 = time.perf_counter()
    result = app.run()
    wall = time.perf_counter() - t0
    assert result.file_stats.complete
    nevents = next(app.world.env._eid)
    return wall, nevents


def bench_strategy(strategy: str, nfragments: int, scheduler: str = "heap") -> dict:
    """Best-of-N wall seconds and the derived events/s for one strategy."""
    best_wall = float("inf")
    nevents = 0
    for _ in range(REPEATS):
        wall, nevents = _run_once(strategy, nfragments, scheduler)
        best_wall = min(best_wall, wall)
    return {"wall_s": best_wall, "events_per_s": nevents / best_wall}


def measure() -> dict:
    mw = bench_strategy("mw", nfragments=1000)
    ww = bench_strategy("ww-posix", nfragments=250)
    ww_cal = bench_strategy("ww-posix", nfragments=250, scheduler="calendar")
    return {
        "mw_1000r_wall_s": {"value": mw["wall_s"], "higher_is_better": False},
        "mw_1000r_events_per_s": {
            "value": mw["events_per_s"],
            "higher_is_better": True,
        },
        "ww_posix_1000r_wall_s": {"value": ww["wall_s"], "higher_is_better": False},
        "ww_posix_1000r_events_per_s": {
            "value": ww["events_per_s"],
            "higher_is_better": True,
        },
        "ww_posix_1000r_calendar_events_per_s": {
            "value": ww_cal["events_per_s"],
            "higher_is_better": True,
        },
    }


def write_baseline(path: Path) -> None:
    payload = {
        "schema": SCHEMA,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": REPEATS,
            "nranks": NRANKS,
            "nservers": NSERVERS,
        },
        "metrics": measure(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"baseline written to {path}")
    for name, m in sorted(payload["metrics"].items()):
        print(f"  {name:38s} {m['value']:>14,.1f}")


def check_baseline(path: Path, tolerance: float) -> int:
    baseline = json.loads(path.read_text())
    fresh = measure()
    status = 0
    print(f"{'metric':38s} {'baseline':>14s} {'current':>14s} {'ratio':>7s}")
    for name, base in sorted(baseline["metrics"].items()):
        if name not in fresh:
            print(f"{name:38s} missing from current build: FAIL")
            status = 1
            continue
        new = fresh[name]["value"]
        old = base["value"]
        ratio = new / old if old else float("inf")
        if base["higher_is_better"]:
            regressed = new < old * (1.0 - tolerance)
        else:
            regressed = new > old * (1.0 + tolerance)
        flag = "FAIL" if regressed else "ok"
        print(f"{name:38s} {old:>14,.1f} {new:>14,.1f} {ratio:>6.2f}x  {flag}")
        status |= 1 if regressed else 0
    verdict = "PASSED" if status == 0 else f"FAILED (>{tolerance:.0%} regression)"
    print("SCALE BASELINE", verdict)
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--write", metavar="PATH", help="record a fresh baseline")
    group.add_argument("--check", metavar="PATH", help="gate against a baseline")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.50,
        help="allowed fractional regression before --check fails (default 0.50)",
    )
    args = parser.parse_args(argv)
    if args.write:
        write_baseline(Path(args.write))
        return 0
    return check_baseline(Path(args.check), args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
