"""Multi-master sharding — where M masters beat one on tail latency.

The paper's topology has a single master, and its master-writes (mw)
strategy funnels every result byte through that one rank's NIC and one
serial writer.  This bench serves the same saturating Poisson load
through 1, 2, 4, and 8 masters (same total rank count, same *global*
admission capacity — ``max_pending`` is split across the shards) and
records the merged p50/p99 completion latency per master count.

Shape checked — the p99 crossover:

* Under **mw**, sharding is a large tail-latency win: each extra master
  adds an independent result funnel and writer, and p99 collapses until
  the shards run out of workers (8 masters on 24 ranks leaves 2 workers
  each, and the curve flattens or turns).
* Under **ww-list**, the workers already write directly and the master
  was never the bottleneck, so sharding only costs worker ranks: one
  master stays best and p99 *rises* with M.
* At light load neither effect matters — queries never queue, every
  topology serves them at essentially the same latency — so the win is a
  saturation phenomenon, not a constant factor.
"""

import math

import pytest

from repro.core import SimulationConfig, run_simulation
from repro.serve import ArrivalConfig
from repro.shard import ShardConfig

from conftest import FULL, write_output

NPROCS = 24
MASTER_COUNTS = (1, 2, 4, 8)
#: Global admission capacity, split evenly across the masters so every
#: topology may hold the same number of in-flight queries.
TOTAL_PENDING = 32
SERVE_QUERIES = 96 if FULL else 48
NFRAGMENTS = 16 if FULL else 8
#: Offered loads (queries/s): well below service rate, and a standing
#: queue.  The crossover only exists at the saturating rate.
LIGHT_RATE = 0.05
SATURATING_RATE = 4.0


def run_point(strategy, masters, rate):
    arrival = ArrivalConfig(
        process="poisson",
        rate=rate,
        max_pending=max(TOTAL_PENDING // masters, 1),
    )
    shard = ShardConfig(nshards=masters, placement="hash") if masters > 1 else None
    cfg = SimulationConfig(
        strategy=strategy,
        nprocs=NPROCS,
        nqueries=SERVE_QUERIES,
        nfragments=NFRAGMENTS,
        arrival=arrival,
        shard=shard,
    )
    return run_simulation(cfg)


def fmt(value):
    return "-" if isinstance(value, float) and math.isnan(value) else f"{value:.2f}"


@pytest.mark.benchmark(group="sharding")
def test_sharding_p99_crossover(benchmark):
    """Saturating load: mw's p99 collapses with masters, ww-list's rises."""

    def sweep():
        rows = {}
        for strategy in ("mw", "ww-list"):
            for rate in (LIGHT_RATE, SATURATING_RATE):
                for masters in MASTER_COUNTS:
                    result = run_point(strategy, masters, rate)
                    s = result.serve_stats
                    rows[(strategy, rate, masters)] = dict(
                        completed=s["completed"],
                        rejected=s["rejected"],
                        p50=s["latency_p50_s"],
                        p99=s["latency_p99_s"],
                        steals=s.get("steals", 0.0),
                        imbalance=s.get("imbalance", 1.0),
                        elapsed=result.elapsed,
                    )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'strategy':9s} {'rate qps':>8s} {'masters':>7s} {'completed':>9s} "
        f"{'rejected':>8s} {'p50 s':>8s} {'p99 s':>8s} {'steals':>6s} "
        f"{'imbal':>6s} {'drain s':>8s}"
    ]
    for (strategy, rate, masters), r in rows.items():
        lines.append(
            f"{strategy:9s} {rate:>8g} {masters:>7d} {r['completed']:>9g} "
            f"{r['rejected']:>8g} {fmt(r['p50']):>8s} {fmt(r['p99']):>8s} "
            f"{r['steals']:>6g} {r['imbalance']:>6.2f} {r['elapsed']:>8.2f}"
        )

    mw = {m: rows[("mw", SATURATING_RATE, m)] for m in MASTER_COUNTS}
    ww = {m: rows[("ww-list", SATURATING_RATE, m)] for m in MASTER_COUNTS}
    best_mw = min(MASTER_COUNTS, key=lambda m: mw[m]["p99"])
    lines.append("")
    lines.append(
        f"saturating mw: best p99 at {best_mw} masters "
        f"({fmt(mw[best_mw]['p99'])}s vs {fmt(mw[1]['p99'])}s single-master, "
        f"{mw[1]['p99'] / mw[best_mw]['p99']:.2f}x)"
    )
    lines.append(
        f"saturating ww-list: single master stays best "
        f"({fmt(ww[1]['p99'])}s vs {fmt(min(ww[m]['p99'] for m in (2, 4, 8)))}s "
        f"sharded minimum)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_output("sharding_crossover.txt", text)

    # The crossover itself: with master-writes, every sharded topology
    # beats the single master's tail at saturation...
    for masters in (2, 4, 8):
        assert mw[masters]["p99"] < mw[1]["p99"]
    # ...by a healthy margin at the best point...
    assert mw[best_mw]["p99"] < 0.7 * mw[1]["p99"]
    # ...while worker-writing never needed the help.
    assert ww[1]["p99"] <= min(ww[m]["p99"] for m in (2, 4, 8))
    # Light load: no queueing, so sharding moves mw's p99 by little.
    light = {m: rows[("mw", LIGHT_RATE, m)]["p99"] for m in MASTER_COUNTS}
    assert max(light.values()) < 0.5 * mw[1]["p99"]
