"""Smoke-diff the heap and calendar schedulers on identical workloads.

The calendar queue is a pure performance feature: both backends use the
same ``(time, priority, eid)`` total order, so a run under
``scheduler="calendar"`` must be *bit-identical* to the default heap —
same elapsed time, same phase breakdowns, same server and fault stats.
This script runs a spread of configurations (including a fault plan and
fluid bulk transfers) under both backends and diffs the full result
fingerprints, exiting non-zero on the first divergence.  CI runs it as a
cheap end-to-end determinism gate; the pytest equivalence suite
(``tests/integration/test_scheduler_equivalence.py``) covers the same
property with more granular diagnostics.

Usage::

    python benchmarks/scheduler_diff.py [--verbose]
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import S3aSim, SimulationConfig  # noqa: E402
from repro.faults import FaultPlan, ServerOutage, WorkerCrash  # noqa: E402
from repro.pvfs import PVFSConfig  # noqa: E402

MIB = 1024 * 1024


def _configs():
    base = dict(nprocs=8, nqueries=3, nfragments=12)
    yield "mw", SimulationConfig(strategy="mw", **base)
    yield "ww-coll+sync", SimulationConfig(
        strategy="ww-coll", query_sync=True, **base
    )
    plan = FaultPlan(
        server_outages=(ServerOutage(server_id=0, start=6.0, duration=2.0),),
        worker_crashes=(WorkerCrash(rank=1, at_time=4.0, downtime_s=2.0),),
    )
    yield "ww-list+faults", SimulationConfig(
        strategy="ww-list",
        store_data=True,
        check=True,
        fault_plan=plan,
        pvfs=PVFSConfig(server_cache_B=4 * MIB, replicas=2),
        **base,
    )
    fluid = SimulationConfig(strategy="mw", **base)
    yield "mw+fluid", fluid.with_(
        network=replace(
            fluid.network, eager_threshold_B=2048, fluid_threshold_B=4096
        )
    )
    # Medium scale: enough churn to force calendar resizes mid-run (the
    # regime that exposed the resize re-anchoring bug).
    yield "ww-coll@32", SimulationConfig(
        strategy="ww-coll", nprocs=32, nqueries=4, nfragments=16
    )


def _fingerprint(result, app):
    return (
        result.elapsed,
        tuple(sorted(result.master.as_dict().items())),
        tuple(tuple(sorted(w.as_dict().items())) for w in result.workers),
        result.file_stats,
        tuple(sorted(result.server_stats.items())),
        tuple(sorted(result.fault_stats.items())),
        app.fh.file.bytestore.extents(),
    )


def _run(config, scheduler):
    app = S3aSim(config.with_(scheduler=scheduler))
    t0 = time.perf_counter()
    result = app.run()
    return _fingerprint(result, app), time.perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verbose", action="store_true", help="print per-config timings"
    )
    args = parser.parse_args(argv)
    status = 0
    for name, config in _configs():
        heap_fp, heap_s = _run(config, "heap")
        cal_fp, cal_s = _run(config, "calendar")
        ok = heap_fp == cal_fp
        flag = "identical" if ok else "DIVERGED"
        if args.verbose or not ok:
            print(
                f"{name:16s} heap={heap_s:6.2f}s calendar={cal_s:6.2f}s  {flag}"
            )
        if not ok:
            for i, (h, c) in enumerate(zip(heap_fp, cal_fp)):
                if h != c:
                    print(f"  field {i}: heap={h!r}")
                    print(f"  field {i}: calendar={c!r}")
            status = 1
    print("SCHEDULER DIFF", "PASSED" if status == 0 else "FAILED")
    return status


if __name__ == "__main__":
    sys.exit(main())
