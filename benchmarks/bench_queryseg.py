"""Extension benchmark — query segmentation vs database segmentation.

Measures the introduction's motivating comparison (Section 1): query
segmentation replicates the database and re-streams whatever exceeds node
memory on every query, while database segmentation fits the database into
the machine's aggregate memory and self-schedules fine-grained tasks.
"""

import pytest

from repro.core import (
    SimulationConfig,
    run_query_segmentation,
    run_simulation,
)
from repro.workload import ResultModel

from conftest import write_output

MIB = 1024 * 1024


@pytest.mark.benchmark(group="queryseg")
def test_queryseg_vs_dbseg_memory_pressure(benchmark):
    """Sweep the database-size : worker-memory ratio."""
    base = SimulationConfig(
        nprocs=8, nqueries=8, nfragments=32,
        result_model=ResultModel(min_count=100, max_count=200),
    )
    memory = 128 * MIB

    def sweep():
        rows = []
        for db_mib in (64, 256, 1024):
            config = base.with_(db_total_bytes=db_mib * MIB)
            qseg = run_query_segmentation(config, worker_memory_B=memory)
            dbseg = run_simulation(config)
            rows.append((db_mib, qseg.elapsed, dbseg.elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "database MiB | query-seg | db-seg (worker memory 128 MiB)",
    ]
    for db_mib, q, d in rows:
        lines.append(f"{db_mib:>12d} | {q:8.2f}s | {d:7.2f}s")
    text = "\n".join(lines)
    print("\n" + text)
    write_output("queryseg_memory.txt", text)

    # Database segmentation's advantage grows with the database:memory
    # ratio (the paper's "inevitable trend" argument).
    small_ratio = rows[0][1] / rows[0][2]
    large_ratio = rows[-1][1] / rows[-1][2]
    assert large_ratio > small_ratio


@pytest.mark.benchmark(group="queryseg")
def test_queryseg_underutilization(benchmark):
    """Workers beyond the query count idle under query segmentation."""
    base = SimulationConfig(
        nqueries=4, nfragments=32, db_total_bytes=64 * MIB,
        result_model=ResultModel(min_count=100, max_count=200),
    )

    def sweep():
        rows = []
        for nprocs in (5, 17):
            config = base.with_(nprocs=nprocs)
            qseg = run_query_segmentation(config, worker_memory_B=256 * MIB)
            dbseg = run_simulation(config)
            rows.append((nprocs, qseg.elapsed, dbseg.elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"np={np_:>3d}: query-seg {q:7.2f}s, db-seg {d:7.2f}s"
        for np_, q, d in rows
    )
    print("\n" + text)
    write_output("queryseg_underutilization.txt", text)

    qseg_speedup = rows[0][1] / rows[1][1]
    dbseg_speedup = rows[0][2] / rows[1][2]
    assert dbseg_speedup > qseg_speedup
