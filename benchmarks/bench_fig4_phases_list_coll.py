"""Figure 4 — per-phase timing vs process count for WW-List and WW-Coll.

Paper shapes checked: WW-List is moderately affected by forced sync (less
than WW-POSIX, because its I/O phase is shorter); WW-Coll is essentially
unchanged because its collective write already synchronizes the workers;
and WW-Coll's waiting shows up as data-distribution time.
"""

import pytest

from repro.analysis import phase_table, stacked_bars
from repro.core.phases import Phase

from conftest import PROCESS_COUNTS, write_output


@pytest.mark.benchmark(group="fig4")
def test_fig4_phase_breakdown(benchmark, process_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sections = []
    for strategy in ("ww-list", "ww-coll"):
        for query_sync in (False, True):
            sections.append(phase_table(process_sweep, strategy, query_sync))
            sections.append(stacked_bars(process_sweep, strategy, query_sync))
    text = "\n\n".join(sections)
    print("\n" + text)
    write_output("fig4_phases_list_coll.txt", text)

    top = float(max(PROCESS_COUNTS))

    # WW-Coll: at most a few percent difference sync vs no-sync (paper: 6%).
    coll_nosync = process_sweep.lookup("ww-coll", False, top).elapsed
    coll_sync = process_sweep.lookup("ww-coll", True, top).elapsed
    assert abs(coll_sync - coll_nosync) / coll_nosync < 0.10

    # WW-List: sync phase grows under forced sync, but less than WW-POSIX's
    # (paper: 0.41->5.87 s for List vs 1.01->12 s for POSIX at 96p).
    list_sync = process_sweep.lookup("ww-list", True, top).worker_mean
    posix_sync = process_sweep.lookup("ww-posix", True, top).worker_mean
    assert list_sync[Phase.SYNC] <= posix_sync[Phase.SYNC] * 1.25


@pytest.mark.benchmark(group="fig4")
def test_fig4_coll_wait_shows_as_data_distribution(benchmark, process_sweep):
    """"While workers are waiting to do collective I/O after processing
    their portion of the query, they are wasting time, which shows up in
    the data distribution time"."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    top = float(max(PROCESS_COUNTS))
    coll = process_sweep.lookup("ww-coll", False, top).worker_mean
    lst = process_sweep.lookup("ww-list", False, top).worker_mean
    assert coll[Phase.DATA_DISTRIBUTION] > lst[Phase.DATA_DISTRIBUTION] * 2
