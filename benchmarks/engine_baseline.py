"""Regenerate or gate the committed DES-engine throughput baseline.

``BENCH_engine.json`` (repo root) records the simulator's hot-path
throughput so every PR has a perf trajectory: regressions here directly
inflate the wall-clock cost of regenerating the paper's figures.

Usage::

    python benchmarks/engine_baseline.py --write BENCH_engine.json
    python benchmarks/engine_baseline.py --check BENCH_engine.json [--tolerance 0.30]

``--check`` re-measures on the current machine and fails (exit 1) when any
metric regresses beyond the tolerance relative to the committed baseline.
Hardware differences between the recording machine and CI are absorbed by
the generous default tolerance; the gate exists to catch order-of-magnitude
algorithmic regressions, not single-digit noise.

Measurements are best-of-N (minimum over repeats) so a background-noise
spike cannot fail the gate; only stdlib + the package itself are needed
(no pytest-benchmark).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import SimulationConfig, run_simulation  # noqa: E402
from repro.mpi import MpiWorld, NetworkConfig  # noqa: E402
from repro.sim import Environment, Store  # noqa: E402

SCHEMA = 1
REPEATS = 5


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Minimum wall seconds of ``fn`` over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_event_loop(nevents: int = 20_000, scheduler: str = "heap") -> float:
    """Chained-timeout throughput (events/s) — the kernel's hottest path.

    One event per timestamp, so this is the calendar queue's *worst* case
    (every batch is a singleton) and the heap's best; it stays pinned to
    the default heap scheduler as the continuity metric across PRs.
    """

    def run_chain():
        env = Environment(scheduler=scheduler)

        def chain(env):
            for _ in range(nevents):
                yield env.timeout(1)

        env.run(env.process(chain(env)))
        assert env.now == nevents

    return nevents / _best_of(run_chain)


def bench_sync_phases(
    nprocs: int = 64, phases: int = 60, scheduler: str = "heap"
) -> float:
    """Synchronized-phase throughput (events/s): many processes waking at
    identical timestamps with zero-delay cascades between wakes — the
    event-population shape of a real S3aSim run at scale, and the case the
    calendar queue's batched dequeue targets."""
    nevents = nprocs * phases * 5

    def run_phases():
        env = Environment(scheduler=scheduler)

        def worker(env):
            for _ in range(phases):
                yield env.timeout(1.0)
                for _ in range(4):
                    yield env.timeout(0)

        for _ in range(nprocs):
            env.process(worker(env))
        env.run()

    return nevents / _best_of(run_phases, repeats=3)


def bench_store(nops: int = 4_000) -> float:
    """Producer/consumer put+get pairs per second (the mailbox substrate)."""

    def run_store():
        env = Environment()
        store = Store(env)

        def producer(env):
            for i in range(nops):
                yield store.put(i)

        def consumer(env):
            for _ in range(nops):
                yield store.get()

        env.process(producer(env))
        done = env.process(consumer(env))
        env.run(done)

    return nops / _best_of(run_store)


def bench_pingpong(nmsgs: int = 1_000) -> float:
    """Round-trip messages per second between two simulated ranks."""

    def run_pingpong():
        world = MpiWorld(nranks=2, network=NetworkConfig.myrinet2000())

        def main(comm):
            other = 1 - comm.rank
            for i in range(nmsgs):
                if comm.rank == 0:
                    yield from comm.send(other, 1, 64, payload=i)
                    yield from comm.recv(source=other, tag=2)
                else:
                    payload, _ = yield from comm.recv(source=other, tag=1)
                    yield from comm.send(other, 2, 64, payload=payload)

        world.spawn_all(main)
        world.run()

    return nmsgs / _best_of(run_pingpong, repeats=3)


def bench_small_sim() -> float:
    """End-to-end wall seconds of a small but complete S3aSim run."""
    cfg = SimulationConfig(nprocs=8, nqueries=4, nfragments=16)

    def run_once():
        result = run_simulation(cfg)
        assert result.file_stats.complete

    return _best_of(run_once, repeats=3)


def measure() -> dict:
    return {
        "event_loop_events_per_s": {
            "value": bench_event_loop(),
            "higher_is_better": True,
        },
        "event_loop_calendar_events_per_s": {
            "value": bench_event_loop(scheduler="calendar"),
            "higher_is_better": True,
        },
        "sync_phases_events_per_s": {
            "value": bench_sync_phases(),
            "higher_is_better": True,
        },
        "sync_phases_calendar_events_per_s": {
            "value": bench_sync_phases(scheduler="calendar"),
            "higher_is_better": True,
        },
        "store_ops_per_s": {"value": bench_store(), "higher_is_better": True},
        "pingpong_msgs_per_s": {"value": bench_pingpong(), "higher_is_better": True},
        "small_sim_wall_s": {"value": bench_small_sim(), "higher_is_better": False},
    }


def write_baseline(path: Path) -> None:
    payload = {
        "schema": SCHEMA,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": REPEATS,
        },
        "metrics": measure(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"baseline written to {path}")
    for name, m in sorted(payload["metrics"].items()):
        print(f"  {name:28s} {m['value']:>14,.1f}")


def check_baseline(path: Path, tolerance: float) -> int:
    baseline = json.loads(path.read_text())
    fresh = measure()
    status = 0
    print(f"{'metric':28s} {'baseline':>14s} {'current':>14s} {'ratio':>7s}")
    for name, base in sorted(baseline["metrics"].items()):
        if name not in fresh:
            print(f"{name:28s} missing from current build: FAIL")
            status = 1
            continue
        new = fresh[name]["value"]
        old = base["value"]
        ratio = new / old if old else float("inf")
        if base["higher_is_better"]:
            regressed = new < old * (1.0 - tolerance)
        else:
            regressed = new > old * (1.0 + tolerance)
        flag = "FAIL" if regressed else "ok"
        print(f"{name:28s} {old:>14,.1f} {new:>14,.1f} {ratio:>6.2f}x  {flag}")
        status |= 1 if regressed else 0
    verdict = "PASSED" if status == 0 else f"FAILED (>{tolerance:.0%} regression)"
    print("ENGINE BASELINE", verdict)
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--write", metavar="PATH", help="record a fresh baseline")
    group.add_argument("--check", metavar="PATH", help="gate against a baseline")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression before --check fails (default 0.30)",
    )
    args = parser.parse_args(argv)
    if args.write:
        write_baseline(Path(args.write))
        return 0
    return check_baseline(Path(args.check), args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
