"""Engine micro-benchmarks — simulator throughput, not paper figures.

These use pytest-benchmark conventionally (many rounds) to track the
speed of the hot paths: the DES event loop, message matching, striping
arithmetic, and result generation.  Regressions here directly inflate the
wall-clock cost of the figure sweeps.
"""

import numpy as np
import pytest

from repro.core import SimulationConfig, run_simulation
from repro.mpi import MpiWorld, NetworkConfig
from repro.pvfs import StripingLayout
from repro.sim import Environment, RandomStreams, Store
from repro.workload import (
    NT_HISTOGRAM,
    NT_QUERY_HISTOGRAM,
    FragmentedDatabase,
    QuerySet,
    ResultGenerator,
    ResultModel,
)


@pytest.mark.benchmark(group="engine")
def test_event_loop_throughput(benchmark):
    """Schedule-and-run cost of 10k chained timeouts."""

    def run_chain():
        env = Environment()

        def chain(env):
            for _ in range(10_000):
                yield env.timeout(1)

        env.run(env.process(chain(env)))
        return env.now

    assert benchmark(run_chain) == 10_000


@pytest.mark.benchmark(group="engine")
def test_store_matching_throughput(benchmark):
    """Producer/consumer through a Store (the mailbox substrate)."""

    def run_store():
        env = Environment()
        store = Store(env)

        def producer(env):
            for i in range(2000):
                yield store.put(i)

        def consumer(env):
            total = 0
            for _ in range(2000):
                total += yield store.get()
            return total

        env.process(producer(env))
        done = env.process(consumer(env))
        return env.run(done)

    assert benchmark(run_store) == sum(range(2000))


@pytest.mark.benchmark(group="engine")
def test_message_round_trip_rate(benchmark):
    """1000 ping-pong messages between two ranks."""

    def run_pingpong():
        world = MpiWorld(nranks=2, network=NetworkConfig.myrinet2000())

        def main(comm):
            other = 1 - comm.rank
            for i in range(1000):
                if comm.rank == 0:
                    yield from comm.send(other, 1, 64, payload=i)
                    payload, _ = yield from comm.recv(source=other, tag=2)
                else:
                    payload, _ = yield from comm.recv(source=other, tag=1)
                    yield from comm.send(other, 2, 64, payload=payload)
            return comm.env.now

        world.spawn_all(main)
        return world.run()[0]

    assert benchmark(run_pingpong) > 0


@pytest.mark.benchmark(group="engine")
def test_striping_arithmetic(benchmark):
    layout = StripingLayout(strip_size=64 * 1024, nservers=16)
    regions = [(i * 70_000, 7_000) for i in range(500)]

    def map_all():
        return layout.map_regions(regions)

    by_server = benchmark(map_all)
    assert sum(len(v) for v in by_server.values()) >= 500


@pytest.mark.benchmark(group="engine")
def test_result_generation(benchmark):
    streams = RandomStreams(2006)
    queries = QuerySet.generate(NT_QUERY_HISTOGRAM, 20, streams)
    database = FragmentedDatabase(NT_HISTOGRAM, 128, 4 * 1024**3, streams)
    generator = ResultGenerator(queries, database, ResultModel(), streams)

    def one_query_all_fragments():
        return sum(generator.batch(0, f).count for f in range(128))

    count = benchmark(one_query_all_fragments)
    assert 1000 <= count <= 2000


@pytest.mark.benchmark(group="engine")
def test_small_simulation_wall_time(benchmark):
    """End-to-end wall cost of a small but complete run."""
    cfg = SimulationConfig(nprocs=8, nqueries=4, nfragments=16)

    def run_once():
        return run_simulation(cfg)

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.file_stats.complete
