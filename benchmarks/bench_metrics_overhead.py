"""Gate the runtime cost of enabling the metrics registry.

The observability layer promises near-zero cost: disabled runs pay one
attribute load and branch per instrumented site, enabled runs one float add
per event.  This benchmark measures both modes on the same end-to-end
simulation the engine baseline uses and fails when

1. the *enabled* run is more than ``--tolerance`` (default 5%) slower than
   the *disabled* run measured in the same process, or
2. the *disabled* run itself regressed beyond ``--baseline-tolerance``
   (default 30%) against the committed ``BENCH_engine.json``
   ``small_sim_wall_s`` — catching instrumentation cost smuggled onto the
   un-instrumented path, which an A/B comparison alone would miss.

Usage::

    python benchmarks/bench_metrics_overhead.py [--baseline BENCH_engine.json]

Measurements are best-of-N (minimum over repeats), interleaved A/B/A/B so a
machine-load drift penalizes both modes equally.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import SimulationConfig, run_simulation  # noqa: E402

REPEATS = 7

#: Same workload as ``engine_baseline.bench_small_sim`` so the committed
#: ``small_sim_wall_s`` is directly comparable.
CONFIG = SimulationConfig(nprocs=8, nqueries=4, nfragments=16)


def _run(collect_metrics: bool) -> float:
    t0 = time.perf_counter()
    result = run_simulation(CONFIG.with_(collect_metrics=collect_metrics))
    seconds = time.perf_counter() - t0
    assert result.file_stats.complete
    assert (result.metrics is not None) == collect_metrics
    return seconds


def measure(repeats: int = REPEATS) -> tuple:
    """Best-of wall seconds for (disabled, enabled), interleaved."""
    _run(False)  # warm imports and caches outside the timed repeats
    best_off = best_on = float("inf")
    for _ in range(repeats):
        best_off = min(best_off, _run(False))
        best_on = min(best_on, _run(True))
    return best_off, best_on


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed enabled-vs-disabled overhead fraction (default 0.05)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="also gate the disabled run against this BENCH_engine.json",
    )
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=0.30,
        help="allowed disabled-run regression vs the baseline (default 0.30)",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS, help="best-of-N repeats"
    )
    args = parser.parse_args(argv)

    best_off, best_on = measure(args.repeats)
    overhead = best_on / best_off - 1.0
    status = 0

    print(f"{'mode':12s} {'best-of wall s':>15s}")
    print(f"{'disabled':12s} {best_off:>15.4f}")
    print(f"{'enabled':12s} {best_on:>15.4f}")
    flag = "ok" if overhead <= args.tolerance else "FAIL"
    print(f"metrics overhead: {overhead:+.1%} (limit {args.tolerance:.0%})  {flag}")
    if overhead > args.tolerance:
        status = 1

    if args.baseline:
        doc = json.loads(Path(args.baseline).read_text())
        committed = doc["metrics"]["small_sim_wall_s"]["value"]
        limit = committed * (1.0 + args.baseline_tolerance)
        flag = "ok" if best_off <= limit else "FAIL"
        print(
            f"disabled vs committed small_sim_wall_s: {best_off:.4f} "
            f"vs {committed:.4f} (limit {limit:.4f})  {flag}"
        )
        if best_off > limit:
            status = 1

    print("METRICS OVERHEAD", "PASSED" if status == 0 else "FAILED")
    return status


if __name__ == "__main__":
    sys.exit(main())
