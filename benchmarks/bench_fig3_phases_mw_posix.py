"""Figure 3 — per-phase timing vs process count for MW and WW-POSIX.

Regenerates the four stacked-bar charts (MW no-sync/sync, WW-POSIX
no-sync/sync, worker-process mean) as tables.

Paper shapes checked: forced sync changes MW little (the master's write
already serializes the workers), while WW-POSIX pays heavily in sync time,
and WW-POSIX's *I/O phase itself* does not grow under sync (the paper even
measured a decrease from the gentler request rate).
"""

import pytest

from repro.analysis import phase_table, stacked_bars
from repro.core.phases import Phase

from conftest import PROCESS_COUNTS, write_output


@pytest.mark.benchmark(group="fig3")
def test_fig3_phase_breakdown(benchmark, process_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sections = []
    for strategy in ("mw", "ww-posix"):
        for query_sync in (False, True):
            sections.append(phase_table(process_sweep, strategy, query_sync))
            sections.append(stacked_bars(process_sweep, strategy, query_sync))
    text = "\n\n".join(sections)
    print("\n" + text)
    write_output("fig3_phases_mw_posix.txt", text)

    top = float(max(PROCESS_COUNTS))

    # MW: sync vs no-sync within a small factor (paper: <= ~5%).
    mw_nosync = process_sweep.lookup("mw", False, top).elapsed
    mw_sync = process_sweep.lookup("mw", True, top).elapsed
    assert abs(mw_sync - mw_nosync) / mw_nosync < 0.25

    # WW-POSIX: forced sync inflates the sync phase substantially
    # (paper: 1.01 s -> 12 s at 96 processes).
    posix_nosync = process_sweep.lookup("ww-posix", False, top).worker_mean
    posix_sync = process_sweep.lookup("ww-posix", True, top).worker_mean
    assert posix_sync[Phase.SYNC] > posix_nosync[Phase.SYNC] * 1.5

    # WW-POSIX: the I/O phase itself does not blow up under sync
    # (paper measured a ~17% decrease; we accept anything non-explosive).
    assert posix_sync[Phase.IO] < posix_nosync[Phase.IO] * 1.5


@pytest.mark.benchmark(group="fig3")
def test_fig3_mw_workers_idle_while_master_writes(benchmark, process_sweep):
    """MW's worker bars are dominated by data-distribution wait at scale —
    the paper's centralization argument made visible."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    top = float(max(PROCESS_COUNTS))
    mw = process_sweep.lookup("mw", False, top).worker_mean
    assert mw[Phase.DATA_DISTRIBUTION] > mw[Phase.COMPUTE]
    assert mw[Phase.IO] == 0.0  # workers never touch the file under MW
