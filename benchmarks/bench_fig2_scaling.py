"""Figure 2 — overall execution time when scaling the number of processes.

Regenerates both panels (no-sync and sync): one series per strategy over
the process-count axis, plus the paper's headline "WW-List outperforms X
by N%" ratios at the largest process count.

Paper shape being checked: WW-List fastest everywhere; MW worst and by far
at scale; gains slow considerably at about 32 processes.
"""

import pytest

from repro.analysis import FIG2_RATIOS_PCT, line_chart, overall_table, ratio_table
from repro.analysis.sweeps import process_scaling_sweep

from conftest import BASE, PROCESS_COUNTS, write_output


@pytest.mark.benchmark(group="fig2")
def test_fig2_overall_execution_time(benchmark, process_sweep):
    """Times one representative point; prints/saves the whole figure."""
    mid = PROCESS_COUNTS[len(PROCESS_COUNTS) // 2]

    def representative_run():
        return process_scaling_sweep(
            BASE,
            process_counts=(mid,),
            strategies=("ww-list",),
            sync_options=(False,),
        )

    benchmark.pedantic(representative_run, rounds=1, iterations=1)

    top = float(max(PROCESS_COUNTS))
    sections = []
    for query_sync in (False, True):
        sections.append(overall_table(process_sweep, query_sync))
        sections.append(line_chart(process_sweep, query_sync))
    sections.append(
        ratio_table(process_sweep, top, paper_ratios=FIG2_RATIOS_PCT)
    )
    text = "\n\n".join(sections)
    print("\n" + text)
    write_output("fig2_overall_vs_processes.txt", text)

    # Shape assertions (the paper's strongest Figure 2 claims).
    for query_sync in (False, True):
        best = process_sweep.lookup("ww-list", query_sync, top)
        for strategy in ("mw", "ww-posix", "ww-coll"):
            other = process_sweep.lookup(strategy, query_sync, top)
            assert other.elapsed >= best.elapsed, (
                f"{strategy} beat ww-list at {top} procs (sync={query_sync})"
            )
    # MW is the worst strategy at scale, by a wide margin (paper: 364%).
    mw = process_sweep.lookup("mw", False, top)
    best = process_sweep.lookup("ww-list", False, top)
    assert mw.elapsed > 2.0 * best.elapsed


@pytest.mark.benchmark(group="fig2")
def test_fig2_knee_near_32_processes(benchmark, process_sweep):
    """"Noticeable performance gains ... slowed considerably at about 32
    processes"."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = process_sweep.series("ww-list", False)
    xs = [x for x, _ in series]
    times = {x: r.elapsed for x, r in series}
    small = [x for x in xs if x <= 8]
    large = [x for x in xs if x >= 32]
    if len(small) >= 2 and len(large) >= 2:
        early_gain = times[small[0]] / times[small[-1]]
        early_factor = small[-1] / small[0]
        late_gain = times[large[0]] / times[large[-1]]
        late_factor = large[-1] / large[0]
        # Early scaling is near-linear; late scaling efficiency has
        # dropped well below it (the knee).
        early_eff = early_gain / early_factor
        late_eff = late_gain / late_factor
        assert early_eff > 0.5
        assert late_eff < 0.8 * early_eff
