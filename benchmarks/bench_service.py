"""Online service mode — completion latency vs offered load per strategy.

The paper never measures its deployment scenario (a continuously loaded
search service); this bench does, on the Figure 5 cluster: every strategy
serves the same Poisson arrival schedule at a spread of offered loads,
and the artifact records the admission ledger and the p50/p95/p99
completion latency (arrival → result durable) per (strategy, rate) point.

Shape checked: at light load the strategies serve queries almost
back-to-back and their tail latencies sit close together; near
saturation the pending queue is always full, latency is dominated by
drain throughput, and p99 fans out in the strategies' batch-throughput
order — the paper's I/O-strategy ranking re-emerges as a service-latency
ranking.
"""

import pytest

from repro.analysis import arrival_sweep
from repro.serve import ArrivalConfig

from conftest import BASE, FULL, SPEED_NPROCS, write_output

# Offered loads (queries/s) straddling saturation: the cluster drains a
# query every few simulated seconds, so the low end arrives slower than
# service and the high end is effectively a standing queue.
RATES = (0.02, 0.05, 0.1, 0.5, 2.0) if FULL else (0.02, 0.1, 0.5, 2.0)

SERVE_QUERIES = 20 if FULL else 12


def _latency_table(sweep):
    lines = [
        f"{'strategy':10s} {'rate qps':>9s} {'offered':>8s} {'admitted':>9s} "
        f"{'rejected':>9s} {'p50 s':>9s} {'p95 s':>9s} {'p99 s':>9s}"
    ]
    for strategy in sweep.strategies():
        for x, result in sweep.series(strategy, False):
            s = result.serve_stats
            lines.append(
                f"{strategy:10s} {x:>9g} {s['offered']:>8g} "
                f"{s['admitted']:>9g} {s['rejected']:>9g} "
                f"{s['latency_p50_s']:>9.3f} {s['latency_p95_s']:>9.3f} "
                f"{s['latency_p99_s']:>9.3f}"
            )
    return "\n".join(lines)


@pytest.fixture(scope="module")
def service_sweep(sweep_jobs):
    base = BASE.with_(
        nqueries=SERVE_QUERIES,
        write_every=1,
        arrival=ArrivalConfig(
            process="poisson", rate=1.0, max_pending=SERVE_QUERIES
        ),
    )
    return arrival_sweep(
        base, rates=RATES, nprocs=SPEED_NPROCS, jobs=sweep_jobs
    )


@pytest.mark.benchmark(group="service")
def test_service_latency_vs_offered_load(benchmark, service_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    text = _latency_table(service_sweep)
    print("\n" + text)
    write_output("service_latency.txt", text)

    top, bottom = max(RATES), min(RATES)
    p99 = {
        rate: {
            strategy: service_sweep.lookup(strategy, False, rate).serve_stats[
                "latency_p99_s"
            ]
            for strategy in service_sweep.strategies()
        }
        for rate in (top, bottom)
    }
    # Every point admitted the full batch (max_pending == nqueries): the
    # comparison is pure queueing, not admission.
    for strategy in service_sweep.strategies():
        for rate in RATES:
            stats = service_sweep.lookup(strategy, False, rate).serve_stats
            assert stats["admitted"] == float(SERVE_QUERIES)
            assert stats["rejected"] == 0.0
    # Saturation separates the strategies: the p99 spread at the top rate
    # dwarfs the light-load spread, and the strategies genuinely diverge.
    def spread(row):
        return max(row.values()) - min(row.values())

    assert spread(p99[top]) > 2.0 * spread(p99[bottom])
    assert len(set(p99[top].values())) == len(p99[top])
