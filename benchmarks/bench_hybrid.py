"""Extension benchmark — hybrid query/database segmentation.

Implements and measures the paper's named future-work item: "hybrid query
segmentation/database segmentation strategies".  Sweeps the partition
count for the collective strategy (where partition scope matters most,
since the whole partition must synchronize for every collective write)
and for the proposed individual list-I/O strategy.
"""

import pytest

from repro.core import HybridS3aSim, SimulationConfig, run_simulation

from conftest import write_output

NPROCS = 24
WORKLOAD = dict(nqueries=12, nfragments=48)


@pytest.mark.benchmark(group="hybrid")
@pytest.mark.parametrize("strategy", ["ww-coll", "ww-list"])
def test_hybrid_partition_sweep(benchmark, strategy):
    cfg = SimulationConfig(nprocs=NPROCS, strategy=strategy, **WORKLOAD)

    def sweep():
        rows = {1: run_simulation(cfg).elapsed}
        for k in (2, 4):
            result = HybridS3aSim(cfg, k).run()
            assert result.complete
            rows[k] = result.elapsed
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = f"{strategy}: partitions -> elapsed: " + ", ".join(
        f"{k}: {v:.2f}s" for k, v in rows.items()
    )
    print("\n" + text)
    write_output(f"hybrid_{strategy}.txt", text)

    # Sanity: everything completed and produced positive times; the
    # trade-off direction (scope reduction vs load imbalance) is workload-
    # dependent, so no ordering is asserted.
    assert all(v > 0 for v in rows.values())


@pytest.mark.benchmark(group="hybrid")
def test_hybrid_helps_collective_more_than_individual(benchmark):
    """Partitioning shrinks WW-Coll's synchronization scope; WW-List has
    no such scope, so its relative change should be smaller."""
    def measure():
        out = {}
        for strategy in ("ww-coll", "ww-list"):
            cfg = SimulationConfig(nprocs=NPROCS, strategy=strategy, **WORKLOAD)
            pure = run_simulation(cfg).elapsed
            split = HybridS3aSim(cfg, 2).run().elapsed
            out[strategy] = split / pure
        return out

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "hybrid(2)/pure ratios: " + ", ".join(
        f"{k}: {v:.2f}" for k, v in ratios.items()
    )
    print("\n" + text)
    write_output("hybrid_ratio.txt", text)
    assert ratios["ww-coll"] <= ratios["ww-list"] * 1.2
