"""Extension benchmarks — hybrid strategies.

Two separate "hybrid" ideas share this module:

* the paper's named future-work item, "hybrid query segmentation/database
  segmentation strategies" — partition-count sweeps below; and
* the adaptive per-query selector (``--strategy hybrid-auto``), measured
  against every static strategy on a mixed workload.
"""

import pytest

from repro.core import HybridS3aSim, SimulationConfig, run_simulation
from repro.core.strategies import STRATEGIES
from repro.workload.results import ResultModel

from conftest import write_output

NPROCS = 24
WORKLOAD = dict(nqueries=12, nfragments=48)

# Mixed workload for the adaptive bench: query output volumes span three
# orders of magnitude, so no single static strategy is tuned for all of
# them and the funnel-everything-through-rank-0 legacy default (MW) pays
# heavily on the large queries.
MIXED = dict(
    nprocs=16,
    nqueries=12,
    nfragments=24,
    write_every=1,
    seed=42,
    result_model=ResultModel(min_count=5, max_count=1500),
)


@pytest.mark.benchmark(group="hybrid-auto")
def test_hybrid_auto_beats_or_matches_every_static(benchmark):
    """hybrid-auto must be at least as fast as the best static strategy
    on the mixed workload (it converges on the per-query winner), and
    clearly faster than the legacy MW default."""

    def measure():
        out = {}
        for strategy in sorted(STRATEGIES) + ["hybrid-auto"]:
            cfg = SimulationConfig(
                strategy=strategy, collect_metrics=True, **MIXED
            )
            result = run_simulation(cfg)
            assert result.file_stats.complete
            out[strategy] = result
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    elapsed = {name: r.elapsed for name, r in results.items()}
    hybrid = elapsed.pop("hybrid-auto")
    choices = {
        name: results["hybrid-auto"].metrics.counter_total(
            "adapt.choices", chosen=name
        )
        for name in ("mw", "ww-posix", "ww-list")
    }
    lines = [
        "hybrid-auto vs statics on a mixed workload "
        f"(nprocs={MIXED['nprocs']}, nqueries={MIXED['nqueries']}, "
        "result counts 5..1500):",
        *(
            f"  {name:12s} {t:8.3f}s  (hybrid-auto x{t / hybrid:.2f})"
            for name, t in sorted(elapsed.items())
        ),
        f"  {'hybrid-auto':12s} {hybrid:8.3f}s",
        "  choices: "
        + ", ".join(f"{k}={v:.0f}" for k, v in choices.items()),
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("hybrid_auto_mixed.txt", text)

    best_static = min(elapsed.values())
    # Tolerance: a query drawn under the small-query threshold may route
    # to MW, whose single-writer funnel can trail WW-List by a percent or
    # two on this workload even when the volume estimate says otherwise.
    assert hybrid <= best_static * 1.02
    assert hybrid < 0.8 * elapsed["mw"]


@pytest.mark.benchmark(group="hybrid")
@pytest.mark.parametrize("strategy", ["ww-coll", "ww-list"])
def test_hybrid_partition_sweep(benchmark, strategy):
    cfg = SimulationConfig(nprocs=NPROCS, strategy=strategy, **WORKLOAD)

    def sweep():
        rows = {1: run_simulation(cfg).elapsed}
        for k in (2, 4):
            result = HybridS3aSim(cfg, k).run()
            assert result.complete
            rows[k] = result.elapsed
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = f"{strategy}: partitions -> elapsed: " + ", ".join(
        f"{k}: {v:.2f}s" for k, v in rows.items()
    )
    print("\n" + text)
    write_output(f"hybrid_{strategy}.txt", text)

    # Sanity: everything completed and produced positive times; the
    # trade-off direction (scope reduction vs load imbalance) is workload-
    # dependent, so no ordering is asserted.
    assert all(v > 0 for v in rows.values())


@pytest.mark.benchmark(group="hybrid")
def test_hybrid_helps_collective_more_than_individual(benchmark):
    """Partitioning shrinks WW-Coll's synchronization scope; WW-List has
    no such scope, so its relative change should be smaller."""
    def measure():
        out = {}
        for strategy in ("ww-coll", "ww-list"):
            cfg = SimulationConfig(nprocs=NPROCS, strategy=strategy, **WORKLOAD)
            pure = run_simulation(cfg).elapsed
            split = HybridS3aSim(cfg, 2).run().elapsed
            out[strategy] = split / pure
        return out

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = "hybrid(2)/pure ratios: " + ", ".join(
        f"{k}: {v:.2f}" for k, v in ratios.items()
    )
    print("\n" + text)
    write_output("hybrid_ratio.txt", text)
    assert ratios["ww-coll"] <= ratios["ww-list"] * 1.2
