"""Shared infrastructure for the figure-regeneration benchmarks.

Every table and figure of the paper's evaluation (Section 4) has a bench
module here.  Figures 2-4 share one process-count sweep; Figures 5-7 share
one compute-speed sweep; both are computed once per session and cached.

Scale control
-------------
``S3ASIM_BENCH_SCALE=full``    — the paper's exact setup (20 queries, 128
                                 fragments, 2..96 processes, speeds
                                 0.1..25.6).  Minutes of wall time.
``S3ASIM_BENCH_SCALE=reduced`` — default: half-scale workload and thinned
                                 axes.  The shapes (orderings, knees,
                                 ratios) are preserved; see EXPERIMENTS.md.

Parallel fan-out
----------------
``--jobs N`` (or ``S3ASIM_BENCH_JOBS=N``) fans the sweep points of the
session-cached figure sweeps out over N worker processes via the
``repro.exec`` engine.  Results are bit-identical to serial execution;
only the wall clock changes.

Each bench writes its regenerated series to ``benchmarks/output/*.txt`` so
the data survives pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import compute_speed_sweep, process_scaling_sweep
from repro.core import SimulationConfig
from repro.exec import ProgressReporter

FULL = os.environ.get("S3ASIM_BENCH_SCALE", "reduced") == "full"


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=int(os.environ.get("S3ASIM_BENCH_JOBS", "1")),
        help="worker processes for the figure sweeps (default: "
        "S3ASIM_BENCH_JOBS or 1)",
    )


@pytest.fixture(scope="session")
def sweep_jobs(request):
    return request.config.getoption("--jobs")

# Full-scale and reduced-scale snapshots live side by side so a reduced
# re-run never clobbers paper-scale figure data.
OUTPUT_DIR = Path(__file__).parent / "output" / ("full" if FULL else "reduced")

if FULL:
    PROCESS_COUNTS = (2, 4, 8, 16, 32, 48, 64, 96)
    SPEEDS = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6)
    SPEED_NPROCS = 64
    BASE = SimulationConfig()  # paper defaults: 20 queries, 128 fragments
else:
    PROCESS_COUNTS = (2, 4, 8, 16, 32, 64)
    SPEEDS = (0.1, 0.4, 1.6, 6.4, 25.6)
    SPEED_NPROCS = 32
    BASE = SimulationConfig(nqueries=10, nfragments=48)


def write_output(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n")


@pytest.fixture(scope="session")
def process_sweep(sweep_jobs):
    """The Figure 2/3/4 experiment: all strategies over process counts."""
    return process_scaling_sweep(
        BASE,
        process_counts=PROCESS_COUNTS,
        jobs=sweep_jobs,
        reporter=ProgressReporter(total=len(PROCESS_COUNTS) * 8, label="fig2-4"),
    )


@pytest.fixture(scope="session")
def speed_sweep(sweep_jobs):
    """The Figure 5/6/7 experiment: all strategies over compute speeds."""
    return compute_speed_sweep(
        BASE,
        speeds=SPEEDS,
        nprocs=SPEED_NPROCS,
        jobs=sweep_jobs,
        reporter=ProgressReporter(total=len(SPEEDS) * 8, label="fig5-7"),
    )
