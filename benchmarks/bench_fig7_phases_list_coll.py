"""Figure 7 — per-phase timing vs compute speed for WW-List and WW-Coll.

Paper shapes checked: WW-List's sync overhead stays small across speeds
("due to its optimized noncontiguous list I/O method, it incurs smaller
overhead" than POSIX); WW-Coll is insensitive to the forced sync at every
speed; and at slow speeds WW-Coll's data-distribution (waiting) time
dwarfs the individual strategies'.
"""

import pytest

from repro.analysis import phase_table, stacked_bars
from repro.core.phases import Phase

from conftest import SPEEDS, write_output


@pytest.mark.benchmark(group="fig7")
def test_fig7_phase_breakdown(benchmark, speed_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    sections = []
    for strategy in ("ww-list", "ww-coll"):
        for query_sync in (False, True):
            sections.append(phase_table(speed_sweep, strategy, query_sync))
            sections.append(stacked_bars(speed_sweep, strategy, query_sync))
    text = "\n\n".join(sections)
    print("\n" + text)
    write_output("fig7_phases_list_coll.txt", text)

    # WW-Coll: sync vs no-sync within a few percent at every speed
    # (paper: at most 4%).
    for speed in SPEEDS:
        nosync = speed_sweep.lookup("ww-coll", False, float(speed)).elapsed
        sync = speed_sweep.lookup("ww-coll", True, float(speed)).elapsed
        assert abs(sync - nosync) / nosync < 0.10, f"speed={speed}"

    # WW-List stays ahead of WW-POSIX under forced sync at the fast end
    # (paper: List's optimized noncontiguous writes keep its sync and
    # data-distribution overheads below POSIX's).
    hi = float(max(SPEEDS))
    assert (
        speed_sweep.lookup("ww-list", True, hi).elapsed
        <= speed_sweep.lookup("ww-posix", True, hi).elapsed * 1.05
    )


@pytest.mark.benchmark(group="fig7")
def test_fig7_collective_wait_at_slow_speeds(benchmark, speed_sweep):
    """High compute variance at speed 0.1 makes WW-Coll's workers wait
    (gated task assignment + collective entry), visible as
    data-distribution time."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lo = float(min(SPEEDS))
    coll = speed_sweep.lookup("ww-coll", False, lo).worker_mean
    lst = speed_sweep.lookup("ww-list", False, lo).worker_mean
    assert coll[Phase.DATA_DISTRIBUTION] > lst[Phase.DATA_DISTRIBUTION] * 2
