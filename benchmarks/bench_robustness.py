"""Robustness under injected faults — per-strategy recovery costs.

Not a paper figure: the paper motivates frequent result writing with
restartability ("More frequently writing out the results also allows users
to resume a failed application run"), but never measures what a failure
*costs* each strategy.  This bench injects the canned scenario (one worker
crash mid-search plus one degraded I/O server window) into every strategy
and reports completion-time inflation and recovered-vs-lost work.

Expected shape: every strategy finishes with a complete output file (zero
lost result bytes).  MW recovers cheapest per crash (the master holds all
payloads, so only unscored tasks recompute); WW-* additionally lose the
crashed worker's stored batches and may need out-of-band repairs for
offsets issued but never written.
"""

import pytest

from repro.core import S3aSim, SimulationConfig
from repro.faults import FaultPlan

from conftest import write_output

#: Scaled so the crash lands mid-search and the slowdown spans real I/O.
CFG = SimulationConfig(nprocs=8, nqueries=8, nfragments=24)
PLAN = FaultPlan.standard(
    crash_rank=1,
    crash_time=8.0,
    downtime_s=2.0,
    server_id=0,
    slow_start=3.0,
    slow_duration=6.0,
    slow_factor=4.0,
)

STRATEGIES = ("mw", "ww-posix", "ww-list", "ww-coll")


@pytest.mark.benchmark(group="robustness")
def test_robustness_recovery(benchmark):
    def sweep():
        rows = []
        for strategy in STRATEGIES:
            clean = S3aSim(CFG.with_(strategy=strategy)).run()
            faulted = S3aSim(CFG.with_(strategy=strategy, fault_plan=PLAN)).run()
            stats = faulted.fault_stats
            rows.append(
                {
                    "strategy": strategy,
                    "clean_s": clean.elapsed,
                    "faulted_s": faulted.elapsed,
                    "inflation_pct": 100.0 * (faulted.elapsed / clean.elapsed - 1.0),
                    "reassigned": stats.get("tasks_reassigned", 0.0),
                    "batches_lost": stats.get("batches_lost", 0.0),
                    "repairs": stats.get("repairs_issued", 0.0),
                    "retries": stats.get("retries", 0.0),
                    "complete": faulted.file_stats.complete,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = (
        f"{'strategy':10s} {'clean s':>9s} {'faulted s':>9s} {'infl %':>7s} "
        f"{'reassign':>8s} {'lost':>5s} {'repairs':>7s} {'fs retries':>10s} "
        f"{'complete':>8s}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{r['strategy']:10s} {r['clean_s']:>9.3f} {r['faulted_s']:>9.3f} "
            f"{r['inflation_pct']:>6.1f}% {r['reassigned']:>8g} "
            f"{r['batches_lost']:>5g} {r['repairs']:>7g} {r['retries']:>10g} "
            f"{str(r['complete']):>8s}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_output("robustness.txt", text)

    # Zero lost result bytes: every strategy must finish the file.
    assert all(r["complete"] for r in rows)
    # A crash plus a degraded server should not make a run meaningfully
    # faster.  (A reassignment can perturb the dynamic schedule into a
    # *slightly* better packing, so allow a small tolerance.)
    assert all(r["faulted_s"] >= 0.98 * r["clean_s"] for r in rows)
    # The crash forces at least one reassignment everywhere.
    assert all(r["reassigned"] >= 1 for r in rows)


#: ROADMAP item 3's question: "can a replicated WW-List keep its lead over
#: MW when servers die mid-query?"  One server dies permanently mid-query
#: on a 2-way replicated volume; survivors absorb the chain traffic.
from dataclasses import replace as _replace

from repro.faults import ServerKill

RCFG = CFG.with_(pvfs=_replace(CFG.pvfs, replicas=2))
KILL_PLAN = FaultPlan(server_kills=(ServerKill(server_id=0, at_time=8.0),))


@pytest.mark.benchmark(group="robustness")
def test_robustness_replicated_kill(benchmark):
    """Replication price (healthy) and resilience (server dies mid-query)."""

    def sweep():
        rows = []
        for strategy in STRATEGIES:
            base = S3aSim(CFG.with_(strategy=strategy)).run()
            healthy = S3aSim(RCFG.with_(strategy=strategy)).run()
            killed = S3aSim(
                RCFG.with_(strategy=strategy, fault_plan=KILL_PLAN)
            ).run()
            stats = killed.fault_stats
            rows.append(
                {
                    "strategy": strategy,
                    "r1_s": base.elapsed,
                    "r2_s": healthy.elapsed,
                    "ampl_pct": 100.0 * (healthy.elapsed / base.elapsed - 1.0),
                    "killed_s": killed.elapsed,
                    "infl_pct": 100.0 * (killed.elapsed / healthy.elapsed - 1.0),
                    "dead_skips": stats.get("dead_replica_skips", 0.0),
                    "abandoned": stats.get("abandoned_bytes", 0.0),
                    "complete": killed.file_stats.complete,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by = {r["strategy"]: r for r in rows}
    header = (
        f"{'strategy':10s} {'r=1 s':>8s} {'r=2 s':>8s} {'ampl %':>7s} "
        f"{'kill s':>8s} {'infl %':>7s} {'dead skips':>10s} "
        f"{'abandoned B':>11s} {'complete':>8s}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{r['strategy']:10s} {r['r1_s']:>8.3f} {r['r2_s']:>8.3f} "
            f"{r['ampl_pct']:>6.1f}% {r['killed_s']:>8.3f} "
            f"{r['infl_pct']:>6.1f}% {r['dead_skips']:>10g} "
            f"{r['abandoned']:>11g} {str(r['complete']):>8s}"
        )
    lead_healthy = by["mw"]["r2_s"] / by["ww-list"]["r2_s"]
    lead_killed = by["mw"]["killed_s"] / by["ww-list"]["killed_s"]
    verdict = "keeps" if lead_killed > 1.0 else "loses"
    lines += [
        "",
        "ROADMAP: can a replicated WW-List keep its lead over MW when a "
        "server dies mid-query?",
        f"  WW-List vs MW, replicas=2 healthy : MW/WW-List = "
        f"{lead_healthy:.2f}x",
        f"  WW-List vs MW, server 0 killed    : MW/WW-List = "
        f"{lead_killed:.2f}x",
        f"  -> WW-List {verdict} its lead under a mid-query permanent "
        "server death.",
        "  (Every byte survives: chain writes land on the surviving "
        "replica, the dead",
        "  server's ledger is abandoned because the live copies are the "
        "data's home.)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_output("robustness_replicated.txt", text)

    # The headline guarantee: a permanent server death on a replicated
    # volume costs zero result bytes for every strategy.
    assert all(r["complete"] for r in rows)
    # Every strategy actually routed around the corpse.
    assert all(r["dead_skips"] >= 1 for r in rows)
