"""Figure 5 — overall execution time when scaling the compute speed.

The paper's second test suite: 64 processes, compute speed 0.1-25.6
(standing in for faster CPUs, FPGA/ASIC search engines, or better
heuristics).  Regenerates both panels and the headline ratios at 25.6.

Paper shapes checked: MW gains almost nothing from faster compute (its
bottleneck is the master, not the search); the individual worker-writing
strategies benefit strongly; WW-List stays the fastest.
"""

import pytest

from repro.analysis import FIG5_RATIOS_PCT, line_chart, overall_table, ratio_table

from conftest import SPEEDS, write_output


@pytest.mark.benchmark(group="fig5")
def test_fig5_overall_vs_compute_speed(benchmark, speed_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    top = float(max(SPEEDS))
    sections = []
    for query_sync in (False, True):
        sections.append(overall_table(speed_sweep, query_sync))
        sections.append(line_chart(speed_sweep, query_sync))
    sections.append(ratio_table(speed_sweep, top, paper_ratios=FIG5_RATIOS_PCT))
    text = "\n\n".join(sections)
    print("\n" + text)
    write_output("fig5_overall_vs_speed.txt", text)

    lo = float(min(SPEEDS))

    # MW: less than a few percent change across a 256x compute speedup
    # (paper: <2% from 0.1x...25.6x at and beyond base speed).
    mw_base = speed_sweep.lookup("mw", False, 1.6).elapsed
    mw_fast = speed_sweep.lookup("mw", False, top).elapsed
    assert abs(mw_base - mw_fast) / mw_base < 0.15

    # Individual worker-writing strategies benefit substantially.
    for strategy in ("ww-list", "ww-posix"):
        slow = speed_sweep.lookup(strategy, False, lo).elapsed
        fast = speed_sweep.lookup(strategy, False, top).elapsed
        assert fast < slow * 0.6, f"{strategy} did not benefit from speed"

    # WW-List is fastest at the top speed in both panels.
    for query_sync in (False, True):
        best = speed_sweep.lookup("ww-list", query_sync, top)
        for strategy in ("mw", "ww-posix"):
            assert (
                speed_sweep.lookup(strategy, query_sync, top).elapsed
                >= best.elapsed
            )


@pytest.mark.benchmark(group="fig5")
def test_fig5_slow_compute_penalizes_collective(benchmark, speed_sweep):
    """At slow compute speeds the variance across tasks is huge and
    WW-Coll "always pays a high synchronization cost unlike individual WW
    strategies"."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lo = float(min(SPEEDS))
    coll = speed_sweep.lookup("ww-coll", False, lo).elapsed
    lst = speed_sweep.lookup("ww-list", False, lo).elapsed
    assert coll > lst * 1.5
